// Package sched is the engine's admission-controlled request scheduler:
// a fixed pool of worker slots handed out across weighted priority
// classes (interactive / batch / background) from bounded per-class FIFO
// queues. It replaces the flat worker-token channel the engine, pool,
// race and ssyncd layers used to share, where a burst of slow batch work
// (portfolio entrants, experiment grids) could starve cheap interactive
// compiles and overload was only discovered by client timeout. The
// scheduler makes both failure modes explicit: queues are bounded and
// shed arrivals with a structured *QueueFullError, and arrivals whose
// queue-wait estimate already exceeds their context deadline are
// rejected immediately with a *DeadlineError instead of timing out after
// consuming a queue slot. Slot handoff between classes uses smooth
// weighted round-robin, so a saturating flood of low-priority work still
// yields the very next released slot to a newly arrived
// higher-priority request, while queued low-priority work keeps its
// proportional share and can never be starved outright.
package sched

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ssync/internal/obs"
)

// Class names a priority class. The zero value ("") resolves to
// Interactive, so plain requests that never mention priorities keep
// their current latency class.
type Class string

// The built-in priority classes, highest service share first.
const (
	// Interactive is the latency-sensitive default: single compiles from
	// a human or a request/response service path.
	Interactive Class = "interactive"
	// Batch is throughput work that tolerates queueing: pool batches and
	// portfolio race entrants submit at this class.
	Batch Class = "batch"
	// Background is best-effort work (prefetch, warmup, sweeps) that
	// should only consume slots nothing else wants.
	Background Class = "background"
)

// Classes lists the built-in classes in canonical (descending-weight)
// order; Stats reports per-class counters in this order.
var Classes = [NumClasses]Class{Interactive, Batch, Background}

// NumClasses is the number of built-in priority classes.
const NumClasses = 3

// ParseClass resolves a wire/request class name; "" resolves to
// Interactive. Unknown names fail so a typo cannot silently demote (or
// promote) a request.
func ParseClass(s string) (Class, error) {
	if i, ok := Class(s).index(); ok {
		return Classes[i], nil
	}
	return "", fmt.Errorf("sched: unknown priority class %q (want %s, %s or %s)",
		s, Interactive, Batch, Background)
}

// Rank returns a class's position in the canonical strongest-first
// order (0 = interactive; "" resolves to interactive). ok is false for
// unknown class names.
func Rank(c Class) (int, bool) { return c.index() }

// Weaker returns the weaker (lower-priority) of two classes — how a
// quota cap combines with a requested class: the request runs at
// whichever is worse. An unknown class name yields the other operand
// (ParseClass is where unknown names are rejected; Weaker only orders).
func Weaker(a, b Class) Class {
	ai, aok := a.index()
	bi, bok := b.index()
	switch {
	case !aok:
		return b
	case !bok:
		return a
	case bi > ai:
		return Classes[bi]
	default:
		return Classes[ai]
	}
}

// index maps a class to its slot in the per-class arrays — the single
// place class names are resolved (ParseClass and every per-class lookup
// derive from it, so adding a class means extending Classes and
// classWeights only).
func (c Class) index() (int, bool) {
	if c == "" {
		return 0, true // zero value: Interactive
	}
	for i, cc := range Classes {
		if c == cc {
			return i, true
		}
	}
	return 0, false
}

// ClassConfig tunes one priority class.
type ClassConfig struct {
	// Weight is the class's share of slot handoffs while other classes
	// are also queued (smooth weighted round-robin); <= 0 selects the
	// class's default weight.
	Weight int
	// QueueLimit bounds the class's wait queue: arrivals beyond it are
	// shed with *QueueFullError. 0 selects DefaultQueueLimit; negative
	// means unbounded (load shedding by deadline only).
	QueueLimit int
}

// Config configures a Scheduler.
type Config struct {
	// Slots is the number of worker slots — the maximum number of
	// concurrently held Acquires. Must be positive.
	Slots int
	// Class overrides per-class weights and queue bounds; classes absent
	// from the map keep their defaults.
	Class map[Class]ClassConfig
	// Hooks receives queue-wait observations for granted slots (nil: not
	// instrumented). Shed decisions are also logged at debug level
	// through the request context's logger, so a request-ID-threaded
	// log shows why a request was rejected.
	Hooks obs.Hooks
}

// Default per-class weights: a queued interactive request wins ~4 slot
// handoffs for every batch one and ~16 for every background one, which
// keeps interactive latency flat under a saturating flood while the
// flood still drains at a bounded rate. Each weight deliberately
// exceeds the sum of all lower-class weights — that dominance (together
// with handoffLocked zeroing drained classes' credits) is what makes a
// fresh higher-class arrival win the very next handoff no matter what
// credit state the flood has accumulated.
const (
	DefaultInteractiveWeight = 16
	DefaultBatchWeight       = 4
	DefaultBackgroundWeight  = 1
)

// DefaultQueueLimit is the per-class queue bound used when
// ClassConfig.QueueLimit is zero.
const DefaultQueueLimit = 256

// classWeights holds the default weights index-aligned with Classes.
var classWeights = [NumClasses]int{
	DefaultInteractiveWeight, DefaultBatchWeight, DefaultBackgroundWeight,
}

// waiter is one queued Acquire.
type waiter struct {
	// grant is closed when the scheduler hands the waiter a slot.
	grant chan struct{}
	// enqueued is the queue-entry time, for wait-time stats.
	enqueued time.Time
	// granted marks that a slot was handed over (set under the
	// scheduler's mutex before grant closes); a cancelled waiter that
	// finds it set owns a slot it must give back.
	granted bool
}

// classState is one class's queue, WRR credit and counters; guarded by
// the scheduler's mutex.
type classState struct {
	cfg    ClassConfig
	queue  []*waiter
	credit int

	admitted      uint64
	shedQueueFull uint64
	shedDeadline  uint64
	abandoned     uint64
	waited        uint64
	totalWait     time.Duration
	maxWait       time.Duration
}

// principalCounters is one principal's slice of the scheduler's
// admission accounting; guarded by the scheduler's mutex. The name
// comes off the request context (obs.PrincipalName), so accounting
// works wherever the auth layer attributed the request, without sched
// depending on the auth package.
type principalCounters struct {
	admitted uint64
	shed     uint64
	inflight int
}

// maxPrincipals defensively bounds the per-principal accounting map;
// names past the cap share one "overflow" bucket. Real principal names
// come from a keys file, far below this.
const maxPrincipals = 1024

// overflowPrincipal is the shared accounting bucket for principal names
// past maxPrincipals.
const overflowPrincipal = "overflow"

// Scheduler hands a fixed budget of worker slots out across weighted
// priority classes with bounded queues and deadline-aware admission. It
// is safe for concurrent use.
type Scheduler struct {
	hooks      obs.Hooks // nil: not instrumented
	mu         sync.Mutex
	slots      int
	busy       int
	classes    [NumClasses]classState
	principals map[string]*principalCounters
	// avgService is an EWMA of observed slot-hold durations, the basis of
	// queue-wait estimates; zero until the first release (no estimate →
	// no deadline shedding, so a cold scheduler never rejects on a guess).
	avgService time.Duration
}

// New returns a scheduler with cfg.Slots worker slots. It panics on a
// non-positive slot count — a schedulerless (unbounded) engine simply
// has no Scheduler.
func New(cfg Config) *Scheduler {
	if cfg.Slots <= 0 {
		panic("sched: New needs a positive slot count")
	}
	s := &Scheduler{
		slots:      cfg.Slots,
		hooks:      cfg.Hooks,
		principals: make(map[string]*principalCounters),
	}
	for i := range s.classes {
		cc := cfg.Class[Classes[i]]
		if cc.Weight <= 0 {
			cc.Weight = classWeights[i]
		}
		if cc.QueueLimit == 0 {
			cc.QueueLimit = DefaultQueueLimit
		}
		s.classes[i].cfg = cc
	}
	return s
}

// Slots returns the scheduler's worker-slot budget.
func (s *Scheduler) Slots() int { return s.slots }

// Acquire obtains one worker slot for a request of the given class,
// waiting in the class's queue when all slots are busy. It returns a
// release function that must be called exactly once when the slot's
// work finishes (calling it again is a no-op).
//
// Admission control runs on arrival: a full class queue sheds the
// request with *QueueFullError, and when ctx carries a deadline that the
// current queue-wait estimate already overruns, the request is shed with
// *DeadlineError instead of queueing doomed work. Both unwrap to their
// sentinels (ErrQueueFull, ErrDeadline) and carry a retry hint
// (RetryAfter). Cancellation while queued returns ctx.Err(); a slot
// granted concurrently with cancellation is handed back, never leaked.
func (s *Scheduler) Acquire(ctx context.Context, class Class) (release func(), err error) {
	idx, ok := class.index()
	if !ok {
		return nil, fmt.Errorf("sched: unknown priority class %q", class)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	principal := obs.PrincipalName(ctx)
	s.mu.Lock()
	c := &s.classes[idx]
	if s.busy < s.slots {
		s.busy++
		c.admitted++
		s.admitPrincipalLocked(principal)
		s.mu.Unlock()
		return s.releaseFunc(principal), nil
	}
	// All slots busy: admission control, then queue. The queue-full
	// retry hint estimates one same-class handoff — when queue room
	// next opens — not a full drain, so well-behaved clients honouring
	// Retry-After refill the queue instead of leaving slots idle.
	if c.cfg.QueueLimit >= 0 && len(c.queue) >= c.cfg.QueueLimit {
		c.shedQueueFull++
		s.shedPrincipalLocked(principal)
		err := &QueueFullError{Class: Classes[idx], Limit: c.cfg.QueueLimit, Retry: s.waitLocked(idx, 1)}
		s.mu.Unlock()
		obs.Logger(ctx).Debug("sched: shed, queue full",
			"class", string(Classes[idx]), "limit", err.Limit, "retry", err.Retry)
		return nil, err
	}
	if dl, hasDL := ctx.Deadline(); hasDL && s.avgService > 0 {
		estimate := s.estimateLocked(idx)
		if remaining := time.Until(dl); estimate > remaining {
			c.shedDeadline++
			s.shedPrincipalLocked(principal)
			err := &DeadlineError{Class: Classes[idx], Estimate: estimate, Remaining: remaining, Retry: estimate}
			s.mu.Unlock()
			obs.Logger(ctx).Debug("sched: shed, deadline unmeetable",
				"class", string(Classes[idx]), "estimate", estimate, "remaining", remaining)
			return nil, err
		}
	}
	w := &waiter{grant: make(chan struct{}), enqueued: time.Now()}
	c.queue = append(c.queue, w)
	s.mu.Unlock()

	select {
	case <-w.grant:
		// Admitted is counted here — on acceptance, not on handoff — so
		// a grant that races a cancellation below is recorded as
		// abandoned, never as a phantom admission.
		s.mu.Lock()
		c.admitted++
		s.admitPrincipalLocked(principal)
		s.mu.Unlock()
		if s.hooks != nil {
			s.hooks.QueueWait(string(Classes[idx]), time.Since(w.enqueued))
		}
		obs.TraceFrom(ctx).Record("", obs.SpanID(ctx), "sched.queue",
			w.enqueued, time.Since(w.enqueued),
			map[string]string{"class": string(Classes[idx])})
		return s.releaseFunc(principal), nil
	case <-ctx.Done():
		s.mu.Lock()
		if w.granted {
			// The handoff raced our cancellation: the slot is ours, give
			// it back (to the next waiter, or to the free pool).
			s.handoffLocked()
		} else {
			for i, qw := range c.queue {
				if qw == w {
					c.queue = append(c.queue[:i], c.queue[i+1:]...)
					break
				}
			}
		}
		c.abandoned++
		s.mu.Unlock()
		return nil, ctx.Err()
	}
}

// releaseFunc builds the idempotent slot-release closure handed to a
// successful Acquire. The slot-hold duration feeds the service-time EWMA
// behind queue-wait estimates; the principal name (captured at
// admission, "" for unattributed requests) has its in-flight gauge
// returned.
func (s *Scheduler) releaseFunc(principal string) func() {
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			s.observeServiceLocked(time.Since(start))
			if pc := s.principalLocked(principal); pc != nil && pc.inflight > 0 {
				pc.inflight--
			}
			s.handoffLocked()
			s.mu.Unlock()
		})
	}
}

// principalLocked returns the accounting bucket for a principal name
// ("" — an unattributed request — has none), creating it up to the
// cardinality cap and folding the excess into the overflow bucket.
func (s *Scheduler) principalLocked(name string) *principalCounters {
	if name == "" {
		return nil
	}
	if pc, ok := s.principals[name]; ok {
		return pc
	}
	if len(s.principals) >= maxPrincipals {
		name = overflowPrincipal
		if pc, ok := s.principals[name]; ok {
			return pc
		}
	}
	pc := &principalCounters{}
	s.principals[name] = pc
	return pc
}

// admitPrincipalLocked records one admission for the principal.
func (s *Scheduler) admitPrincipalLocked(name string) {
	if pc := s.principalLocked(name); pc != nil {
		pc.admitted++
		pc.inflight++
	}
}

// shedPrincipalLocked records one shed for the principal.
func (s *Scheduler) shedPrincipalLocked(name string) {
	if pc := s.principalLocked(name); pc != nil {
		pc.shed++
	}
}

// handoffLocked moves one freed slot to the next waiter, chosen by
// smooth weighted round-robin over the non-empty classes: every
// non-empty class's credit grows by its weight, the richest class wins
// the slot and pays the total stake. Ties break in canonical class
// order (interactive first). Classes with an empty queue have their
// credit zeroed at every handoff — a drained class must not bank a
// lose-streak claim (or carry a served-debt) across its idle period, or
// a later arrival would be mis-ranked against the steady flood.
// Because every default weight exceeds the sum of all lower-class
// weights (16 > 4+1, 4 > 1) and a backlogged class's post-stake credit
// stays below the backlogged total, a freshly arrived higher-class
// waiter always wins the very next handoff against any flood of lower
// classes, while the flood keeps its proportional share of subsequent
// handoffs. With no waiters the slot returns to the free pool.
func (s *Scheduler) handoffLocked() {
	best, total := -1, 0
	for i := range s.classes {
		c := &s.classes[i]
		if len(c.queue) == 0 {
			c.credit = 0
			continue
		}
		c.credit += c.cfg.Weight
		total += c.cfg.Weight
		if best < 0 || c.credit > s.classes[best].credit {
			best = i
		}
	}
	if best < 0 {
		s.busy--
		return
	}
	c := &s.classes[best]
	c.credit -= total
	w := c.queue[0]
	c.queue = c.queue[1:]
	// Queue-time telemetry is recorded at handoff — the wait really
	// happened even if the waiter turns out to have been cancelled
	// concurrently; Admitted is the waiter's to count on acceptance.
	wait := time.Since(w.enqueued)
	c.waited++
	c.totalWait += wait
	if wait > c.maxWait {
		c.maxWait = wait
	}
	w.granted = true
	close(w.grant)
}

// estimateLocked estimates how long a new arrival of class idx would
// wait for a slot: its queue position — same-class requests ahead of it,
// plus the share of other classes' queues the weighted round-robin
// would serve in between — times the pace of slot releases (one every
// avgService/slots in steady state). Zero until the first release has
// seeded the service-time EWMA.
func (s *Scheduler) estimateLocked(idx int) time.Duration {
	return s.waitLocked(idx, len(s.classes[idx].queue)+1)
}

// waitLocked estimates the time until the class's n-th same-class
// handoff from now: n plus the cross-class shares the weighted
// round-robin serves in between, times the slot-release pace. n=1 is
// "when does this class next get a slot (or queue room)"; n=depth+1 is
// a new arrival's start estimate.
func (s *Scheduler) waitLocked(idx, n int) time.Duration {
	if s.avgService <= 0 {
		return 0
	}
	c := &s.classes[idx]
	ahead := n
	w := c.cfg.Weight
	for i := range s.classes {
		if i == idx {
			continue
		}
		o := &s.classes[i]
		// While ahead same-class requests drain, class i wins about
		// ahead*weight_i/weight_c handoffs — but never more than it has
		// queued. Round the share down: a high-weight arrival against
		// low-weight queues really does win the next handoff, and an
		// optimistic estimate merely queues a borderline request (which
		// then fails by its own deadline) where a pessimistic one would
		// spuriously shed it with 503.
		share := ahead * o.cfg.Weight / w
		if share > len(o.queue) {
			share = len(o.queue)
		}
		ahead += share
	}
	return time.Duration(ahead) * s.avgService / time.Duration(s.slots)
}

// observeServiceLocked folds one observed slot-hold duration into the
// service-time EWMA (α = 1/8; the first observation seeds it).
func (s *Scheduler) observeServiceLocked(d time.Duration) {
	if d < 0 {
		return
	}
	if s.avgService == 0 {
		s.avgService = d
		return
	}
	s.avgService += (d - s.avgService) / 8
}
