package sched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestParseClass(t *testing.T) {
	for in, want := range map[string]Class{
		"": Interactive, "interactive": Interactive, "batch": Batch, "background": Background,
	} {
		got, err := ParseClass(in)
		if err != nil || got != want {
			t.Errorf("ParseClass(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseClass("urgent"); err == nil {
		t.Error("ParseClass accepted an unknown class")
	}
}

func TestAcquireImmediateWhenSlotsFree(t *testing.T) {
	s := New(Config{Slots: 2})
	rel1, err := s.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := s.Acquire(context.Background(), Background)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Busy != 2 || st.Queued != 0 {
		t.Fatalf("busy=%d queued=%d; want 2 busy, 0 queued", st.Busy, st.Queued)
	}
	rel1()
	rel2()
	rel2() // idempotent: double release must not free a phantom slot
	st = s.Stats()
	if st.Busy != 0 {
		t.Fatalf("busy=%d after release; want 0", st.Busy)
	}
	if got := st.Classes[0].Admitted + st.Classes[2].Admitted; got != 2 {
		t.Fatalf("admitted=%d; want 2", got)
	}
}

// TestInteractiveStartsWithinOneRelease is the acceptance-criterion
// fairness property: an interactive request that arrives while a
// saturating background flood holds every slot and fills the queue is
// handed the very next released slot, ahead of every queued flood
// entry.
func TestInteractiveStartsWithinOneRelease(t *testing.T) {
	const flood = 16
	s := New(Config{Slots: 1})
	relHold, err := s.Acquire(context.Background(), Background)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	floodDone := make(chan struct{}, flood)
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := s.Acquire(context.Background(), Background)
			if err != nil {
				t.Error(err)
				return
			}
			floodDone <- struct{}{}
			rel()
		}()
	}
	waitFor(t, "flood to queue", func() bool { return s.Stats().Classes[2].Depth == flood })

	interactiveGot := make(chan func(), 1)
	go func() {
		rel, err := s.Acquire(context.Background(), Interactive)
		if err != nil {
			t.Error(err)
			return
		}
		interactiveGot <- rel
	}()
	waitFor(t, "interactive to queue", func() bool { return s.Stats().Classes[0].Depth == 1 })

	relHold() // exactly one slot release
	select {
	case rel := <-interactiveGot:
		if n := len(floodDone); n != 0 {
			t.Fatalf("%d flood entries started before the interactive request", n)
		}
		rel()
	case <-time.After(5 * time.Second):
		t.Fatal("interactive request did not start within one slot release")
	}
	wg.Wait()
}

// TestWeightedShareBetweenFloods drives a fixed number of handoffs
// through two saturated queues and checks each class's share matches
// its weight — proportional service, no outright starvation of the
// low-weight class.
func TestWeightedShareBetweenFloods(t *testing.T) {
	const perClass = 20
	s := New(Config{Slots: 1})
	relHold, err := s.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}
	type served struct{ class Class }
	order := make(chan served, 2*perClass)
	var wg sync.WaitGroup
	for _, class := range []Class{Batch, Background} {
		for i := 0; i < perClass; i++ {
			wg.Add(1)
			go func(class Class) {
				defer wg.Done()
				rel, err := s.Acquire(context.Background(), class)
				if err != nil {
					t.Error(err)
					return
				}
				order <- served{class}
				rel()
			}(class)
		}
	}
	waitFor(t, "both floods to queue", func() bool {
		st := s.Stats()
		return st.Classes[1].Depth == perClass && st.Classes[2].Depth == perClass
	})
	relHold()
	wg.Wait()
	close(order)

	// Batch weighs 4, background 1: among the first 10 handoffs both
	// queues are still non-empty, so batch must win 8 of them.
	batchEarly := 0
	seen := 0
	for sv := range order {
		if seen < 10 && sv.class == Batch {
			batchEarly++
		}
		seen++
	}
	if seen != 2*perClass {
		t.Fatalf("served %d; want %d", seen, 2*perClass)
	}
	if batchEarly != 8 {
		t.Fatalf("batch won %d of the first 10 handoffs; want 8 (weight 4 vs 1)", batchEarly)
	}
}

// TestFreshArrivalWinsDespiteBankedCredits is the stale-credit
// regression: serve interleaved interactive+batch handoffs until the
// interactive queue drains (leaving it with a served-debt and batch
// with a banked lose-streak claim), keep the batch flood running, then
// re-arrive interactive — it must still win the very next handoff.
// Without zeroing drained classes' credits, batch's banked credit
// outranks the fresh arrival and the next-slot guarantee silently
// breaks after the first mixed burst.
func TestFreshArrivalWinsDespiteBankedCredits(t *testing.T) {
	s := New(Config{Slots: 1})
	served := make(chan Class, 16)
	proceed := make(chan struct{})
	var wg sync.WaitGroup
	acquire := func(class Class) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := s.Acquire(context.Background(), class)
			if err != nil {
				t.Error(err)
				return
			}
			served <- class
			<-proceed // hold the slot so the test paces every handoff
			rel()
		}()
	}
	acquire(Batch) // holder
	if got := <-served; got != Batch {
		t.Fatalf("holder class %v", got)
	}
	// Two interactive + four batch queued behind the holder.
	for i := 0; i < 2; i++ {
		acquire(Interactive)
	}
	for i := 0; i < 4; i++ {
		acquire(Batch)
	}
	waitFor(t, "queues to fill", func() bool {
		st := s.Stats()
		return st.Classes[0].Depth == 2 && st.Classes[1].Depth == 4
	})
	// H1, H2: interactive wins both (weight 16 vs 4), draining its queue
	// with credit -8 banked and batch at +8 under the pre-fix arithmetic.
	for i := 0; i < 2; i++ {
		proceed <- struct{}{}
		if got := <-served; got != Interactive {
			t.Fatalf("handoff %d went to %v; want interactive", i+1, got)
		}
	}
	// H3: only batch is queued.
	proceed <- struct{}{}
	if got := <-served; got != Batch {
		t.Fatalf("batch-only handoff went to %v", got)
	}
	// Fresh interactive arrival mid-flood.
	acquire(Interactive)
	waitFor(t, "fresh interactive to queue", func() bool { return s.Stats().Classes[0].Depth == 1 })
	// H4: the fresh arrival must win immediately, banked credits or not.
	proceed <- struct{}{}
	if got := <-served; got != Interactive {
		t.Fatalf("fresh interactive arrival lost the next handoff to %v (stale WRR credits)", got)
	}
	for i := 0; i < 4; i++ { // drain: 3 queued batch + the winner's hold
		proceed <- struct{}{}
	}
	wg.Wait()
}

func TestQueueFullShedding(t *testing.T) {
	s := New(Config{Slots: 1, Class: map[Class]ClassConfig{Batch: {QueueLimit: 2}}})
	relHold, err := s.Acquire(context.Background(), Batch)
	if err != nil {
		t.Fatal(err)
	}
	defer relHold()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := s.Acquire(context.Background(), Batch)
			if err != nil {
				t.Error(err)
				return
			}
			rel()
		}()
	}
	waitFor(t, "queue to fill", func() bool { return s.Stats().Classes[1].Depth == 2 })

	_, err = s.Acquire(context.Background(), Batch)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-limit acquire returned %v; want ErrQueueFull", err)
	}
	var qf *QueueFullError
	if !errors.As(err, &qf) || qf.Class != Batch || qf.Limit != 2 {
		t.Fatalf("structured error = %#v; want Batch/2", err)
	}
	if !Shed(err) {
		t.Error("Shed(queue-full) = false")
	}
	// Other classes have their own queues: an interactive arrival still
	// queues fine.
	ctx, cancel := context.WithCancel(context.Background())
	ictx := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, Interactive)
		ictx <- err
	}()
	waitFor(t, "interactive to queue", func() bool { return s.Stats().Classes[0].Depth == 1 })
	cancel()
	if err := <-ictx; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled interactive acquire returned %v", err)
	}
	if got := s.Stats().Classes[1].ShedQueueFull; got != 1 {
		t.Fatalf("ShedQueueFull=%d; want 1", got)
	}
	relHold()
	wg.Wait()
}

func TestDeadlineRejectedOnArrival(t *testing.T) {
	s := New(Config{Slots: 1})
	// Seed the service-time model directly: each slot hold costs ~1s.
	s.mu.Lock()
	s.avgService = time.Second
	s.mu.Unlock()
	relHold, err := s.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}
	defer relHold()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = s.Acquire(ctx, Interactive)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("doomed acquire returned %v; want ErrDeadline", err)
	}
	var de *DeadlineError
	if !errors.As(err, &de) || de.Estimate <= 0 {
		t.Fatalf("structured error = %#v; want a positive estimate", err)
	}
	if retry, ok := RetryAfter(fmt.Errorf("engine: request %q: %w", "r", err)); !ok || retry != de.Retry {
		t.Fatalf("RetryAfter through a wrap = %v, %v; want %v, true", retry, ok, de.Retry)
	}
	st := s.Stats()
	if st.Classes[0].ShedDeadline != 1 {
		t.Fatalf("ShedDeadline=%d; want 1", st.Classes[0].ShedDeadline)
	}
	if st.Queued != 0 {
		t.Fatalf("rejected request left %d queued", st.Queued)
	}

	// A deadline the estimate fits (queue empty beyond the holder →
	// estimate ≈ 1s < 10s) queues instead of shedding.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	got := make(chan error, 1)
	go func() {
		rel, err := s.Acquire(ctx2, Interactive)
		if err == nil {
			rel()
		}
		got <- err
	}()
	waitFor(t, "admissible request to queue", func() bool { return s.Stats().Classes[0].Depth == 1 })
	relHold()
	if err := <-got; err != nil {
		t.Fatalf("admissible request failed: %v", err)
	}
}

// TestColdSchedulerNeverDeadlineSheds: with no service-time
// observations there is no estimate, so even a tight deadline queues
// rather than being rejected on a guess.
func TestColdSchedulerNeverDeadlineSheds(t *testing.T) {
	s := New(Config{Slots: 1})
	relHold, err := s.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = s.Acquire(ctx, Interactive)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cold-scheduler acquire returned %v; want DeadlineExceeded from queue wait", err)
	}
	if st := s.Stats(); st.Classes[0].ShedDeadline != 0 || st.Classes[0].Abandoned != 1 {
		t.Fatalf("stats = %+v; want no deadline sheds, one abandoned", st.Classes[0])
	}
	relHold()
}

func TestCancelWhileQueuedFreesTheQueueSlot(t *testing.T) {
	s := New(Config{Slots: 1})
	relHold, err := s.Acquire(context.Background(), Batch)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, Batch)
		errc <- err
	}()
	waitFor(t, "waiter to queue", func() bool { return s.Stats().Classes[1].Depth == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire returned %v", err)
	}
	st := s.Stats()
	if st.Classes[1].Depth != 0 || st.Classes[1].Abandoned != 1 {
		t.Fatalf("after cancel: %+v; want empty queue, one abandoned", st.Classes[1])
	}
	// The abandoned waiter must not absorb the next handoff.
	relHold()
	rel, err := s.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if st := s.Stats(); st.Busy != 0 {
		t.Fatalf("busy=%d at quiescence; want 0", st.Busy)
	}
}

// TestAcquireStress hammers the scheduler from many goroutines with
// mixed classes, short deadlines and cancellations, then checks the
// slot accounting converged: no leaked or phantom slots. Run with
// -race; the cancellation/handoff race is the point.
func TestAcquireStress(t *testing.T) {
	s := New(Config{Slots: 4, Class: map[Class]ClassConfig{
		Interactive: {QueueLimit: 8}, Batch: {QueueLimit: 8}, Background: {QueueLimit: 8},
	}})
	classes := []Class{Interactive, Batch, Background}
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 50; i++ {
				ctx, cancel := context.WithTimeout(context.Background(),
					time.Duration(rng.Intn(3))*time.Millisecond)
				rel, err := s.Acquire(ctx, classes[rng.Intn(len(classes))])
				if err == nil {
					if rng.Intn(2) == 0 {
						time.Sleep(time.Duration(rng.Intn(100)) * time.Microsecond)
					}
					rel()
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Busy != 0 || st.Queued != 0 {
		t.Fatalf("at quiescence: busy=%d queued=%d; want 0/0", st.Busy, st.Queued)
	}
	rel, err := s.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatalf("scheduler wedged after stress: %v", err)
	}
	rel()
}

func TestStatsSnapshotConsistency(t *testing.T) {
	s := New(Config{Slots: 2})
	rel, err := s.Acquire(context.Background(), Batch)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Slots != 2 || st.Busy != 1 {
		t.Fatalf("stats = %+v; want slots=2 busy=1", st)
	}
	if st.Classes[1].Class != Batch || st.Classes[1].Weight != DefaultBatchWeight {
		t.Fatalf("batch row = %+v", st.Classes[1])
	}
	rel()
	if got := s.Stats().AvgService; got <= 0 {
		t.Fatalf("AvgService=%v after a release; want > 0", got)
	}
}
