package sched

import (
	"sort"
	"time"
)

// PrincipalStats is one principal's admission accounting, attributed
// from the principal name the auth layer put on the request context
// (obs.PrincipalName). Unattributed requests are not counted here.
type PrincipalStats struct {
	// Name is the principal (or "overflow" past the cardinality cap).
	Name string
	// Admitted counts slot acquisitions.
	Admitted uint64
	// Shed counts admission rejections (queue full or deadline).
	Shed uint64
	// InFlight is the number of slots currently held.
	InFlight int
}

// ClassStats is one priority class's point-in-time counters.
type ClassStats struct {
	// Class names the priority class.
	Class Class
	// Weight is the class's configured slot-handoff weight.
	Weight int
	// QueueLimit is the class's configured queue bound (negative:
	// unbounded).
	QueueLimit int
	// Depth is the current queue depth.
	Depth int
	// Admitted counts requests that acquired a slot (immediately or after
	// queueing).
	Admitted uint64
	// ShedQueueFull counts arrivals rejected because the queue was full.
	ShedQueueFull uint64
	// ShedDeadline counts arrivals rejected because the queue-wait
	// estimate already exceeded their deadline.
	ShedDeadline uint64
	// Abandoned counts waiters whose context was cancelled or expired
	// while queued — including the rare grant that raced a cancellation
	// and was handed back (such a grant is never counted as admitted).
	Abandoned uint64
	// Waited counts slot handoffs to queued waiters; queue-time
	// telemetry below is recorded over these. Admissions that acquired a
	// free slot on arrival never queue, so Admitted exceeds the accepted
	// subset of Waited by exactly that immediate count.
	Waited uint64
	// TotalWait is the cumulative queue time across Waited handoffs.
	TotalWait time.Duration
	// MaxWait is the longest single queue wait.
	MaxWait time.Duration
}

// Shed is the class's total load-shed count.
func (c ClassStats) Shed() uint64 { return c.ShedQueueFull + c.ShedDeadline }

// AvgWait is the mean queue time of admissions that actually queued.
func (c ClassStats) AvgWait() time.Duration {
	if c.Waited == 0 {
		return 0
	}
	return c.TotalWait / time.Duration(c.Waited)
}

// Stats is a point-in-time snapshot of the scheduler, taken under one
// lock so the per-class rows and the top-level gauges are mutually
// consistent.
type Stats struct {
	// Slots is the worker-slot budget.
	Slots int
	// Busy is the number of slots currently held.
	Busy int
	// Queued is the total queue depth across classes.
	Queued int
	// AvgService is the EWMA of observed slot-hold durations — the basis
	// of admission-control wait estimates; zero until the first release.
	AvgService time.Duration
	// Classes reports per-class counters in canonical order
	// (interactive, batch, background).
	Classes [NumClasses]ClassStats
	// Principals reports per-principal admission accounting, sorted by
	// name; empty when no request ever carried a principal. Cardinality
	// is bounded by the auth layer's registry (plus one overflow
	// bucket), so metrics exporters may label by Name.
	Principals []PrincipalStats
}

// Stats snapshots the scheduler under one lock.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Stats{Slots: s.slots, Busy: s.busy, AvgService: s.avgService}
	for i := range s.classes {
		c := &s.classes[i]
		out.Queued += len(c.queue)
		out.Classes[i] = ClassStats{
			Class:         Classes[i],
			Weight:        c.cfg.Weight,
			QueueLimit:    c.cfg.QueueLimit,
			Depth:         len(c.queue),
			Admitted:      c.admitted,
			ShedQueueFull: c.shedQueueFull,
			ShedDeadline:  c.shedDeadline,
			Abandoned:     c.abandoned,
			Waited:        c.waited,
			TotalWait:     c.totalWait,
			MaxWait:       c.maxWait,
		}
	}
	if len(s.principals) > 0 {
		out.Principals = make([]PrincipalStats, 0, len(s.principals))
		for name, pc := range s.principals {
			out.Principals = append(out.Principals, PrincipalStats{
				Name:     name,
				Admitted: pc.admitted,
				Shed:     pc.shed,
				InFlight: pc.inflight,
			})
		}
		sort.Slice(out.Principals, func(i, j int) bool {
			return out.Principals[i].Name < out.Principals[j].Name
		})
	}
	return out
}
