// Package schedule defines the hardware-compatible instruction stream the
// compilers emit: logical gates annotated with physical context (trap,
// chain length, ion separation) plus the QCCD transport operations —
// split, move, junction crossing, merge — and the SWAP gates inserted to
// bring ions to trap edges.
package schedule

import (
	"fmt"
	"strings"
)

// Kind enumerates schedule operation types.
type Kind int

const (
	// Gate1Q is a single-qubit gate from the source program.
	Gate1Q Kind = iota
	// Gate2Q is a two-qubit gate from the source program, executed with
	// both ions co-trapped.
	Gate2Q
	// SwapGate is a compiler-inserted SWAP exchanging the states of two
	// co-trapped ions (Obs. 2: needed to move ions to trap edges).
	SwapGate
	// Shift repositions an ion into an adjacent empty slot of its trap
	// (rule 4 of Sec. 3.1); it costs transport time but no gate.
	Shift
	// Split separates an ion from a trap chain at a trap end.
	Split
	// Move carries a split ion along a shuttle segment.
	Move
	// JunctionCross steers an ion through an n-path junction.
	JunctionCross
	// Merge recombines a moved ion into the destination trap chain.
	Merge
	// Measure reads out one qubit.
	Measure
	// Barrier is a scheduling fence from the source program.
	Barrier
)

var kindNames = [...]string{
	"gate1q", "gate2q", "swap", "shift", "split", "move", "junction", "merge", "measure", "barrier",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Op is one scheduled operation. Qubits hold *logical* qubit ids; the
// physical annotations (Trap, ChainLen, IonDist, ...) are captured at
// emission time, when the compiler knows the placement.
type Op struct {
	Kind   Kind
	Name   string    // gate mnemonic for Gate1Q/Gate2Q
	Qubits []int     // logical qubits involved
	Params []float64 // gate parameters

	Trap      int // trap where the op happens (gates, split, merge, shift)
	Segment   int // segment id for Move/JunctionCross
	ChainLen  int // ions in the trap when executed (FM gate time, A(N))
	IonDist   int // ions strictly between the two gate ions (PM/AM time)
	Hops      int // linear move steps for Move
	Junctions int // junctions crossed for JunctionCross
	SlotA     int // source slot for SwapGate/Shift/Split
	SlotB     int // destination slot for SwapGate/Shift
}

// Schedule is the ordered op stream for one compiled program.
type Schedule struct {
	NumQubits int
	Ops       []Op
}

// New returns an empty schedule over n logical qubits.
func New(n int) *Schedule { return &Schedule{NumQubits: n} }

// Append adds an op.
func (s *Schedule) Append(op Op) { s.Ops = append(s.Ops, op) }

// Counts aggregates the headline metrics of Figs. 8–9.
type Counts struct {
	Shuttles    int // one per split-move-merge hop
	Swaps       int // inserted SWAP gates
	TwoQubit    int // program two-qubit gates executed
	SingleQubit int
	Shifts      int
	Junctions   int // total junctions crossed
	Measures    int
}

// Counts scans the schedule and tallies operation classes. A shuttle is
// counted per Split (every hop is a full split-move-merge).
func (s *Schedule) Counts() Counts {
	var c Counts
	for _, op := range s.Ops {
		switch op.Kind {
		case Split:
			c.Shuttles++
		case SwapGate:
			c.Swaps++
		case Gate2Q:
			c.TwoQubit++
		case Gate1Q:
			c.SingleQubit++
		case Shift:
			c.Shifts++
		case JunctionCross:
			c.Junctions += op.Junctions
		case Measure:
			c.Measures++
		}
	}
	return c
}

// LogicalGates extracts the program gates (1Q, 2Q, measure, barrier) in
// scheduled order, dropping transport and inserted SWAPs. Because SWAP
// insertion only relocates ions — logical states ride along — replaying
// these gates must reproduce the source circuit's unitary; the simulator's
// verifier checks exactly that.
func (s *Schedule) LogicalGates() []Op {
	var out []Op
	for _, op := range s.Ops {
		switch op.Kind {
		case Gate1Q, Gate2Q, Measure, Barrier:
			out = append(out, op)
		}
	}
	return out
}

// Validate performs structural checks: qubit ranges, annotation sanity.
func (s *Schedule) Validate() error {
	for i, op := range s.Ops {
		for _, q := range op.Qubits {
			if q < 0 || q >= s.NumQubits {
				return fmt.Errorf("schedule: op %d (%s) references qubit %d out of range", i, op.Kind, q)
			}
		}
		switch op.Kind {
		case Gate2Q, SwapGate:
			if len(op.Qubits) != 2 {
				return fmt.Errorf("schedule: op %d (%s) has %d qubits, want 2", i, op.Kind, len(op.Qubits))
			}
			if op.ChainLen < 2 {
				return fmt.Errorf("schedule: op %d (%s) has chain length %d < 2", i, op.Kind, op.ChainLen)
			}
		case Gate1Q, Measure, Split, Merge, Shift:
			if len(op.Qubits) != 1 {
				return fmt.Errorf("schedule: op %d (%s) has %d qubits, want 1", i, op.Kind, len(op.Qubits))
			}
		case Move:
			if op.Hops < 1 {
				return fmt.Errorf("schedule: op %d (move) has %d hops", i, op.Hops)
			}
		case JunctionCross:
			if op.Junctions < 1 {
				return fmt.Errorf("schedule: op %d (junction) crosses %d junctions", i, op.Junctions)
			}
		}
	}
	return nil
}

// String renders a compact textual listing (for debugging and examples).
func (s *Schedule) String() string {
	var b strings.Builder
	for i, op := range s.Ops {
		fmt.Fprintf(&b, "%4d %-8s", i, op.Kind)
		if op.Name != "" {
			fmt.Fprintf(&b, " %-6s", op.Name)
		}
		fmt.Fprintf(&b, " q%v", op.Qubits)
		if op.Kind != Move && op.Kind != JunctionCross {
			fmt.Fprintf(&b, " trap=%d", op.Trap)
		} else {
			fmt.Fprintf(&b, " seg=%d", op.Segment)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
