package schedule

import (
	"strings"
	"testing"
)

func sample() *Schedule {
	s := New(4)
	s.Append(Op{Kind: Gate1Q, Name: "h", Qubits: []int{0}, Trap: 0, ChainLen: 3})
	s.Append(Op{Kind: SwapGate, Qubits: []int{0, 1}, Trap: 0, ChainLen: 3})
	s.Append(Op{Kind: Split, Qubits: []int{0}, Trap: 0, ChainLen: 3})
	s.Append(Op{Kind: Move, Qubits: []int{0}, Segment: 0, Hops: 1})
	s.Append(Op{Kind: JunctionCross, Qubits: []int{0}, Segment: 0, Junctions: 1})
	s.Append(Op{Kind: Merge, Qubits: []int{0}, Trap: 1, ChainLen: 2})
	s.Append(Op{Kind: Gate2Q, Name: "cx", Qubits: []int{0, 2}, Trap: 1, ChainLen: 2})
	s.Append(Op{Kind: Measure, Qubits: []int{0}, Trap: 1})
	return s
}

func TestCounts(t *testing.T) {
	c := sample().Counts()
	if c.Shuttles != 1 {
		t.Errorf("shuttles = %d, want 1", c.Shuttles)
	}
	if c.Swaps != 1 {
		t.Errorf("swaps = %d, want 1", c.Swaps)
	}
	if c.TwoQubit != 1 || c.SingleQubit != 1 {
		t.Errorf("gate counts = %d/%d, want 1/1", c.TwoQubit, c.SingleQubit)
	}
	if c.Junctions != 1 {
		t.Errorf("junctions = %d, want 1", c.Junctions)
	}
	if c.Measures != 1 {
		t.Errorf("measures = %d, want 1", c.Measures)
	}
}

func TestLogicalGates(t *testing.T) {
	lg := sample().LogicalGates()
	if len(lg) != 3 {
		t.Fatalf("logical gates = %d, want 3 (h, cx, measure)", len(lg))
	}
	if lg[0].Name != "h" || lg[1].Name != "cx" || lg[2].Kind != Measure {
		t.Errorf("logical gate stream wrong: %+v", lg)
	}
}

func TestValidate(t *testing.T) {
	s := sample()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := New(2)
	bad.Append(Op{Kind: Gate2Q, Qubits: []int{0, 5}, ChainLen: 2})
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range qubit accepted")
	}
	bad2 := New(2)
	bad2.Append(Op{Kind: Gate2Q, Qubits: []int{0}, ChainLen: 2})
	if err := bad2.Validate(); err == nil {
		t.Error("wrong arity accepted")
	}
	bad3 := New(2)
	bad3.Append(Op{Kind: Gate2Q, Qubits: []int{0, 1}, ChainLen: 1})
	if err := bad3.Validate(); err == nil {
		t.Error("chain length < 2 accepted for 2Q gate")
	}
	bad4 := New(2)
	bad4.Append(Op{Kind: Move, Qubits: []int{0}, Hops: 0})
	if err := bad4.Validate(); err == nil {
		t.Error("zero-hop move accepted")
	}
}

func TestKindString(t *testing.T) {
	if Split.String() != "split" || Gate2Q.String() != "gate2q" {
		t.Errorf("kind names wrong: %s %s", Split, Gate2Q)
	}
}

func TestScheduleString(t *testing.T) {
	out := sample().String()
	for _, want := range []string{"split", "merge", "swap", "cx"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}
