package schedule

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ssync/internal/noise"
)

// Interval is one timed operation on one qubit's lane.
type Interval struct {
	Op    Op
	Start float64 // µs
	End   float64 // µs
}

// Timeline is the timed expansion of a schedule: per-qubit lanes of
// non-overlapping intervals under the same timing model the simulator
// uses. It powers parallelism analysis and Gantt-style rendering.
type Timeline struct {
	NumQubits int
	Lanes     [][]Interval
	Makespan  float64
}

// BuildTimeline assigns start/end times to every op of s using the timing
// constants in p, mirroring sim.Run's clock rules: ops start when all
// their qubits are free; transport ops occupy only the moving qubit.
func BuildTimeline(s *Schedule, p noise.Params) *Timeline {
	t := &Timeline{NumQubits: s.NumQubits, Lanes: make([][]Interval, s.NumQubits)}
	clock := make([]float64, s.NumQubits)
	place := func(op Op, qubits []int, dur float64) {
		start := 0.0
		for _, q := range qubits {
			if clock[q] > start {
				start = clock[q]
			}
		}
		end := start + dur
		iv := Interval{Op: op, Start: start, End: end}
		for _, q := range qubits {
			clock[q] = end
			t.Lanes[q] = append(t.Lanes[q], iv)
		}
		if end > t.Makespan {
			t.Makespan = end
		}
	}
	for _, op := range s.Ops {
		switch op.Kind {
		case Gate1Q:
			place(op, op.Qubits, p.OneQubitTime)
		case Gate2Q:
			place(op, op.Qubits, p.TwoQubitTime(op.ChainLen, op.IonDist))
		case SwapGate:
			place(op, op.Qubits, p.SwapTime(op.ChainLen, op.IonDist))
		case Shift:
			place(op, op.Qubits, p.ShiftTime)
		case Split:
			place(op, op.Qubits, p.SplitTime)
		case Move:
			place(op, op.Qubits, p.MoveTime*float64(op.Hops))
		case JunctionCross:
			place(op, op.Qubits, p.JunctionTime(op.Junctions))
		case Merge:
			place(op, op.Qubits, p.MergeTime)
		case Measure:
			place(op, op.Qubits, p.MeasureTime)
		case Barrier:
			place(op, op.Qubits, 0)
		}
	}
	return t
}

// Stats summarises a timeline.
type TimelineStats struct {
	Makespan      float64
	BusyTime      float64 // total qubit-µs spent in operations
	TransportTime float64 // qubit-µs in shift/split/move/junction/merge
	GateTime      float64 // qubit-µs in 1Q/2Q/SWAP gates
	AvgParallel   float64 // mean number of concurrently busy qubits
	MaxParallel   int
	CriticalQubit int // qubit whose lane ends last
}

// Stats computes aggregate utilisation and parallelism over the timeline.
func (t *Timeline) Stats() TimelineStats {
	st := TimelineStats{CriticalQubit: -1}
	type event struct {
		at    float64
		delta int
	}
	var events []event
	lastEnd := -1.0
	for q, lane := range t.Lanes {
		for _, iv := range lane {
			dur := iv.End - iv.Start
			st.BusyTime += dur
			switch iv.Op.Kind {
			case Shift, Split, Move, JunctionCross, Merge:
				st.TransportTime += dur
			case Gate1Q, Gate2Q, SwapGate:
				st.GateTime += dur
			}
			if dur > 0 {
				events = append(events, event{iv.Start, 1}, event{iv.End, -1})
			}
		}
		if n := len(lane); n > 0 && lane[n-1].End > lastEnd {
			lastEnd = lane[n-1].End
			st.CriticalQubit = q
		}
	}
	st.Makespan = t.Makespan
	if t.Makespan > 0 {
		st.AvgParallel = st.BusyTime / t.Makespan
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].delta < events[j].delta // process ends before starts
	})
	cur := 0
	for _, e := range events {
		cur += e.delta
		if cur > st.MaxParallel {
			st.MaxParallel = cur
		}
	}
	return st
}

// Gantt renders an ASCII utilisation chart: one row per qubit, `width`
// columns spanning the makespan; gate ops print as '#', SWAPs as 'x',
// transport as '~', idle as '.'.
func (t *Timeline) Gantt(width int) string {
	if width < 1 {
		width = 60
	}
	if t.Makespan <= 0 {
		return ""
	}
	var b strings.Builder
	scale := float64(width) / t.Makespan
	for q, lane := range t.Lanes {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, iv := range lane {
			lo := int(iv.Start * scale)
			hi := int(math.Ceil(iv.End * scale))
			if hi > width {
				hi = width
			}
			if hi <= lo {
				hi = lo + 1
				if hi > width {
					lo, hi = width-1, width
				}
			}
			var ch byte
			switch iv.Op.Kind {
			case Gate1Q, Gate2Q:
				ch = '#'
			case SwapGate:
				ch = 'x'
			case Shift, Split, Move, JunctionCross, Merge:
				ch = '~'
			case Measure:
				ch = 'M'
			default:
				continue
			}
			for i := lo; i < hi; i++ {
				row[i] = ch
			}
		}
		fmt.Fprintf(&b, "q%-3d |%s|\n", q, row)
	}
	fmt.Fprintf(&b, "      0%*s%.0fµs\n", width-len(fmt.Sprintf("%.0fµs", t.Makespan))+3, "", t.Makespan)
	return b.String()
}

// Validate checks per-lane monotonicity and interval sanity.
func (t *Timeline) Validate() error {
	for q, lane := range t.Lanes {
		prev := 0.0
		for i, iv := range lane {
			if iv.End < iv.Start {
				return fmt.Errorf("schedule: timeline lane %d interval %d ends before it starts", q, i)
			}
			if iv.Start < prev-1e-9 {
				return fmt.Errorf("schedule: timeline lane %d interval %d overlaps predecessor", q, i)
			}
			prev = iv.End
		}
	}
	return nil
}
