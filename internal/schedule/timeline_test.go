package schedule

import (
	"math"
	"strings"
	"testing"

	"ssync/internal/noise"
)

func timedSample() *Schedule {
	s := New(4)
	s.Append(Op{Kind: Gate1Q, Name: "h", Qubits: []int{0}, Trap: 0, ChainLen: 2})
	s.Append(Op{Kind: Gate2Q, Name: "cx", Qubits: []int{0, 1}, Trap: 0, ChainLen: 2})
	s.Append(Op{Kind: Gate2Q, Name: "cx", Qubits: []int{2, 3}, Trap: 1, ChainLen: 2})
	s.Append(Op{Kind: Split, Qubits: []int{1}, Trap: 0, ChainLen: 2})
	s.Append(Op{Kind: Move, Qubits: []int{1}, Segment: 0, Hops: 2})
	s.Append(Op{Kind: Merge, Qubits: []int{1}, Trap: 1, ChainLen: 3})
	return s
}

func TestBuildTimelineClocks(t *testing.T) {
	p := noise.DefaultParams()
	tl := BuildTimeline(timedSample(), p)
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	g2 := p.TwoQubitTime(2, 0)
	// q0: h then cx.
	if got, want := tl.Lanes[0][1].End, p.OneQubitTime+g2; math.Abs(got-want) > 1e-9 {
		t.Errorf("q0 cx end = %g, want %g", got, want)
	}
	// q2/q3 cx runs in parallel with q0's ops, starting at 0.
	if tl.Lanes[2][0].Start != 0 {
		t.Errorf("parallel cx start = %g, want 0", tl.Lanes[2][0].Start)
	}
	// q1 transport: starts after its cx, split 80 + move 2*5 + merge 80.
	lane1 := tl.Lanes[1]
	last := lane1[len(lane1)-1]
	wantEnd := p.OneQubitTime + g2 + p.SplitTime + 2*p.MoveTime + p.MergeTime
	if math.Abs(last.End-wantEnd) > 1e-9 {
		t.Errorf("q1 transport end = %g, want %g", last.End, wantEnd)
	}
	if math.Abs(tl.Makespan-wantEnd) > 1e-9 {
		t.Errorf("makespan = %g, want %g", tl.Makespan, wantEnd)
	}
}

func TestTimelineStats(t *testing.T) {
	p := noise.DefaultParams()
	tl := BuildTimeline(timedSample(), p)
	st := tl.Stats()
	if st.Makespan != tl.Makespan {
		t.Error("stats makespan mismatch")
	}
	if st.TransportTime != p.SplitTime+2*p.MoveTime+p.MergeTime {
		t.Errorf("transport time = %g", st.TransportTime)
	}
	g2 := p.TwoQubitTime(2, 0)
	// Gate time counts per-qubit: h once, each cx twice (two lanes).
	if want := p.OneQubitTime + 4*g2; math.Abs(st.GateTime-want) > 1e-9 {
		t.Errorf("gate time = %g, want %g", st.GateTime, want)
	}
	// The two cx gates overlap: at least 4 qubits busy at t=0+.
	if st.MaxParallel < 4 {
		t.Errorf("max parallel = %d, want >= 4", st.MaxParallel)
	}
	if st.AvgParallel <= 0 || st.AvgParallel > 4 {
		t.Errorf("avg parallel = %g", st.AvgParallel)
	}
	if st.CriticalQubit != 1 {
		t.Errorf("critical qubit = %d, want 1 (transport lane)", st.CriticalQubit)
	}
}

func TestTimelineMatchesSimulatorMakespan(t *testing.T) {
	// The timeline must reproduce the simulator's execution time exactly —
	// they share clock rules by construction.
	// (Cross-check lives in sim's tests too; here we verify determinism.)
	p := noise.DefaultParams()
	a := BuildTimeline(timedSample(), p).Makespan
	b := BuildTimeline(timedSample(), p).Makespan
	if a != b {
		t.Errorf("timeline not deterministic: %g vs %g", a, b)
	}
}

func TestGanttRendering(t *testing.T) {
	tl := BuildTimeline(timedSample(), noise.DefaultParams())
	out := tl.Gantt(40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // 4 lanes + axis
		t.Fatalf("gantt lines = %d, want 5:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "#") {
		t.Error("gantt missing gate marks")
	}
	if !strings.Contains(out, "~") {
		t.Error("gantt missing transport marks")
	}
	// Every lane row has the same width.
	w := len(lines[0])
	for _, l := range lines[:4] {
		if len(l) != w {
			t.Errorf("ragged gantt row: %q", l)
		}
	}
}

func TestGanttEmpty(t *testing.T) {
	tl := BuildTimeline(New(2), noise.DefaultParams())
	if out := tl.Gantt(20); out != "" {
		t.Errorf("empty schedule rendered %q", out)
	}
}

func TestTimelineBarrierSync(t *testing.T) {
	p := noise.DefaultParams()
	s := New(2)
	s.Append(Op{Kind: Gate1Q, Name: "h", Qubits: []int{0}, Trap: 0, ChainLen: 1})
	s.Append(Op{Kind: Barrier, Qubits: []int{0, 1}})
	s.Append(Op{Kind: Gate1Q, Name: "h", Qubits: []int{1}, Trap: 0, ChainLen: 1})
	tl := BuildTimeline(s, p)
	// q1's h must start after q0's h (barrier synchronised).
	if got := tl.Lanes[1][1].Start; math.Abs(got-p.OneQubitTime) > 1e-9 {
		t.Errorf("post-barrier start = %g, want %g", got, p.OneQubitTime)
	}
}
