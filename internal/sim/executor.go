package sim

import (
	"math"

	"ssync/internal/device"
	"ssync/internal/noise"
	"ssync/internal/schedule"
)

// Options configures one simulated execution.
type Options struct {
	Params noise.Params
	// PerfectShuttle zeroes all transport time and heating — the "perfect
	// shuttle" idealisation of the optimality analysis (Fig. 16).
	PerfectShuttle bool
	// PerfectSwap drops every inserted SWAP gate — ions behave as if they
	// were always at trap edges ("perfect SWAP", Fig. 16).
	PerfectSwap bool
}

// DefaultOptions uses the paper's simulation parameters.
func DefaultOptions() Options { return Options{Params: noise.DefaultParams()} }

// Metrics is the outcome of simulating one schedule.
type Metrics struct {
	// ExecutionTime is the makespan in µs (max per-qubit completion).
	ExecutionTime float64
	// SuccessRate is Π F over all ops per Eq. 4 (exp of LogSuccess).
	SuccessRate float64
	// LogSuccess is the natural log of the success rate; robust for the
	// deep-circuit cases where the product underflows.
	LogSuccess float64
	// Counts echoes the schedule's op tallies.
	Counts schedule.Counts
	// MaxNbar is the highest per-trap phonon occupation reached from
	// transport ops (background heating excluded).
	MaxNbar float64
}

// Run simulates schedule s on topo: per-qubit clocks advance through gate
// and transport durations; per-trap phonon occupations accumulate k1/k2
// quanta from transport plus Γ·t background heating; each two-qubit gate
// multiplies Eq. 4's fidelity into the success rate.
func Run(s *schedule.Schedule, topo *device.Topology, opt Options) Metrics {
	p := opt.Params
	clock := make([]float64, s.NumQubits)
	nbarOps := make([]float64, topo.NumTraps())
	logSuccess := 0.0
	dead := false

	addF := func(f float64) {
		if f <= 0 {
			dead = true
			return
		}
		logSuccess += math.Log(f)
	}
	// nbar at a trap when a gate starts: transport quanta + background.
	nbarAt := func(trap int, t float64) float64 {
		return nbarOps[trap] + p.Gamma*t*1e-6
	}

	maxNbar := 0.0
	for _, op := range s.Ops {
		switch op.Kind {
		case schedule.Gate1Q:
			q := op.Qubits[0]
			clock[q] += p.OneQubitTime
			addF(p.OneQubitFidelity)

		case schedule.Gate2Q, schedule.SwapGate:
			if op.Kind == schedule.SwapGate && opt.PerfectSwap {
				continue
			}
			q1, q2 := op.Qubits[0], op.Qubits[1]
			start := math.Max(clock[q1], clock[q2])
			if p.T2 > 0 {
				// Idle dephasing: the earlier-arriving qubit waits.
				idle := (start - clock[q1]) + (start - clock[q2])
				addF(math.Exp(-idle / p.T2))
			}
			tau := p.TwoQubitTime(op.ChainLen, op.IonDist)
			if op.Kind == schedule.SwapGate {
				tau = p.SwapTime(op.ChainLen, op.IonDist)
			}
			end := start + tau
			clock[q1], clock[q2] = end, end
			addF(p.TwoQubitFidelity(tau, op.ChainLen, nbarAt(op.Trap, start)))

		case schedule.Shift:
			if opt.PerfectShuttle {
				continue
			}
			clock[op.Qubits[0]] += p.ShiftTime

		case schedule.Split:
			if opt.PerfectShuttle {
				continue
			}
			clock[op.Qubits[0]] += p.SplitTime
			nbarOps[op.Trap] += p.K1 / 2

		case schedule.Move:
			if opt.PerfectShuttle {
				continue
			}
			clock[op.Qubits[0]] += p.MoveTime * float64(op.Hops)

		case schedule.JunctionCross:
			if opt.PerfectShuttle {
				continue
			}
			clock[op.Qubits[0]] += p.JunctionTime(op.Junctions)

		case schedule.Merge:
			if opt.PerfectShuttle {
				continue
			}
			clock[op.Qubits[0]] += p.MergeTime
			nbarOps[op.Trap] += p.K1/2 + p.K2

		case schedule.Measure:
			clock[op.Qubits[0]] += p.MeasureTime

		case schedule.Barrier:
			sync := 0.0
			for _, q := range op.Qubits {
				sync = math.Max(sync, clock[q])
			}
			for _, q := range op.Qubits {
				clock[q] = sync
			}
		}
		for _, nb := range nbarOps {
			if nb > maxNbar {
				maxNbar = nb
			}
		}
	}

	m := Metrics{Counts: s.Counts(), MaxNbar: maxNbar}
	for _, t := range clock {
		if t > m.ExecutionTime {
			m.ExecutionTime = t
		}
	}
	if dead {
		m.LogSuccess = math.Inf(-1)
		m.SuccessRate = 0
	} else {
		m.LogSuccess = logSuccess
		m.SuccessRate = math.Exp(logSuccess)
	}
	return m
}
