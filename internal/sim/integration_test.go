package sim

import (
	"math"
	"math/rand"
	"testing"

	"ssync/internal/circuit"
	"ssync/internal/core"
	"ssync/internal/device"
	"ssync/internal/qasm"
	"ssync/internal/schedule"
	"ssync/internal/workloads"
)

// The timeline and the simulator implement the same clock rules; their
// makespans must agree on real compiled schedules.
func TestTimelineMatchesSimulator(t *testing.T) {
	topo := device.Grid(2, 2, 6)
	for _, c := range []*circuit.Circuit{
		workloads.QFT(12), workloads.BV(10), workloads.QAOA(12, 3),
	} {
		res, err := core.Compile(core.DefaultConfig(), c, topo)
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		m := Run(res.Schedule, topo, opt)
		tl := schedule.BuildTimeline(res.Schedule, opt.Params)
		if err := tl.Validate(); err != nil {
			t.Fatal(err)
		}
		if math.Abs(tl.Makespan-m.ExecutionTime) > 1e-6 {
			t.Errorf("%s: timeline makespan %g != simulator %g", c.Name, tl.Makespan, m.ExecutionTime)
		}
		st := tl.Stats()
		if st.MaxParallel < 1 {
			t.Errorf("%s: no parallelism measured", c.Name)
		}
	}
}

// HardwareCircuit lowering must be unitarily equivalent to the source
// circuit: inserted SWAPs relocate states, and the trailing placement
// permutation is exactly what VerifySchedule's gate-stream replay absorbs.
func TestHardwareCircuitEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		topo := device.Linear(2, 4)
		nq := 4 + r.Intn(3)
		c := circuit.NewCircuit(nq)
		for i := 0; i < 15; i++ {
			a := r.Intn(nq)
			b := r.Intn(nq - 1)
			if b >= a {
				b++
			}
			c.CX(a, b)
		}
		res, err := core.Compile(core.DefaultConfig(), c, topo)
		if err != nil {
			t.Fatal(err)
		}
		hw, ionOf, err := core.HardwareCircuit(res.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		// The hardware circuit leaves logical qubit q's state on ion
		// ionOf[q]; undoing that permutation must recover the source
		// circuit's output exactly.
		rng := rand.New(rand.NewSource(int64(trial)))
		ref, _ := RandomProductState(nq, rng)
		want := ref.Clone()
		if err := want.ApplyCircuit(c.DecomposeToBasis()); err != nil {
			t.Fatal(err)
		}
		got := ref.Clone()
		if err := got.ApplyCircuit(hw); err != nil {
			t.Fatal(err)
		}
		perm := append([]int(nil), ionOf...) // perm[q] = wire holding q's state
		for q := 0; q < nq; q++ {
			for perm[q] != q {
				w := perm[q]
				if err := got.Apply(circuit.New("swap", []int{q, w})); err != nil {
					t.Fatal(err)
				}
				// States on wires q and w swapped: fix up whichever logical
				// qubit pointed at wire q.
				for l := 0; l < nq; l++ {
					if perm[l] == q {
						perm[l] = w
						break
					}
				}
				perm[q] = q
			}
		}
		if ov := Overlap(want, got); ov < 1-1e-7 {
			t.Fatalf("trial %d: hardware circuit diverges (overlap %.9f)", trial, ov)
		}
	}
}

// The lowered hardware circuit must be valid QASM output.
func TestHardwareCircuitQASMExport(t *testing.T) {
	topo := device.Linear(2, 4)
	c := workloads.QFT(6)
	res, err := core.Compile(core.DefaultConfig(), c, topo)
	if err != nil {
		t.Fatal(err)
	}
	hw, _, err := core.HardwareCircuit(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	out := qasm.Write(hw)
	back, err := qasm.Parse(out)
	if err != nil {
		t.Fatalf("exported QASM unparseable: %v", err)
	}
	if len(back.Gates) != len(hw.Gates) {
		t.Errorf("QASM round trip %d -> %d gates", len(hw.Gates), len(back.Gates))
	}
}

func TestTrapProgramPartition(t *testing.T) {
	topo := device.Grid(2, 2, 6)
	c := workloads.QFT(12)
	res, err := core.Compile(core.DefaultConfig(), c, topo)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.TrapProgram(res.Schedule, topo.NumTraps())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ops := range prog {
		total += len(ops)
	}
	counts := res.Schedule.Counts()
	want := counts.TwoQubit + counts.SingleQubit + counts.Swaps + counts.Measures
	if total != want {
		t.Errorf("trap program holds %d gate ops, want %d", total, want)
	}
}

// Commutation-aware compilation must still produce semantically faithful
// schedules — the end-to-end check of the relaxed DAG inside the compiler.
func TestCommutationAwareCompileSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		topo := device.Grid(2, 2, 3)
		nq := 4 + r.Intn(3)
		c := circuit.NewCircuit(nq)
		for i := 0; i < 20; i++ {
			switch r.Intn(4) {
			case 0:
				c.RZ(r.Float64(), r.Intn(nq))
			case 1:
				c.H(r.Intn(nq))
			default:
				a := r.Intn(nq)
				b := r.Intn(nq - 1)
				if b >= a {
					b++
				}
				c.CX(a, b)
			}
		}
		cfg := core.DefaultConfig()
		cfg.CommutationAware = true
		res, err := core.Compile(cfg, c, topo)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifySchedule(c, res.Schedule, int64(trial)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
