package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel gate application. Dense gate application is embarrassingly
// parallel per amplitude pair: every base index (an index with the
// gate's target bits clear) owns exactly the amplitudes it reads and
// writes, and no other base index touches them. The index space is
// therefore split into chunks handed out by an atomic cursor and
// processed by a bounded pool of long-lived workers plus the calling
// goroutine — the partitioning never changes which pair computes which
// product, so parallel results are bit-identical to serial ones.
//
// Steady-state application is allocation-free: the per-apply job
// descriptor is sync.Pool-recycled and workers are started once.

// parallelMinAmps is the amplitude count below which a default-workers
// state applies gates serially — fan-out overhead dominates under it.
// States with an explicit SetWorkers(n>1) parallelize regardless, so
// tests can exercise the parallel path on small states.
const parallelMinAmps = 1 << 14

// applyChunkTarget aims each participant at a handful of chunks, so a
// descheduled worker costs a chunk of tail latency, not a whole share.
const applyChunkTarget = 4

// minChunkAmps keeps chunks large enough that the atomic cursor and
// cache-line sharing at chunk borders stay noise.
const minChunkAmps = 4096

// defaultSimWorkers is the process-wide worker budget for states that
// do not set their own: 0 selects GOMAXPROCS at apply time.
var defaultSimWorkers atomic.Int32

// SetDefaultWorkers sets the process-wide simulator worker budget used
// by states without an explicit SetWorkers: n <= 0 restores the default
// (GOMAXPROCS at apply time, i.e. parallel wherever the runtime is).
// Services wire their -sim-workers flag here.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultSimWorkers.Store(int32(n))
}

// DefaultWorkers resolves the process-wide simulator worker budget.
func DefaultWorkers() int {
	if n := int(defaultSimWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides this state's worker budget: 0 means the process
// default (SetDefaultWorkers/GOMAXPROCS, with the small-state serial
// threshold), 1 forces serial application, n > 1 forces n-way parallel
// application even below the threshold.
func (s *State) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	s.workers = n
}

// effectiveWorkers resolves how many participants the next apply uses.
// The size threshold and chunk-size cap apply only on the default path;
// an explicit SetWorkers(n > 1) always parallelizes so tests can drive
// the parallel machinery on small states.
func (s *State) effectiveWorkers() int {
	w := s.workers
	if w != 0 {
		return w
	}
	if len(s.amp) < parallelMinAmps {
		return 1
	}
	w = DefaultWorkers()
	if max := len(s.amp) / minChunkAmps; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Apply counters (process-wide, mirrored into ssync_sim_* metrics).
var (
	cParallelApplies atomic.Uint64
	cSerialApplies   atomic.Uint64
)

// applyKind discriminates what an applyJob runs over its chunk.
type applyKind uint8

const (
	kind1q applyKind = iota
	kind2q
	kindCCX
	kindCSwap
)

// applyJob is one parallel gate application: the full gate description
// plus the chunk cursor workers draw from. Recycled through jobPool so
// steady-state application allocates nothing.
type applyJob struct {
	s    *State
	kind applyKind
	m1   [4]complex128
	m2   [16]complex128
	b1   int // qubit bit / control 1 / control
	b2   int // second qubit bit / control 2 / swap a
	b3   int // ccx target / swap b
	wg   sync.WaitGroup

	next  atomic.Int64
	chunk int64
	limit int64
}

var jobPool = sync.Pool{New: func() any { return new(applyJob) }}

// run drains chunks until the cursor passes the limit. Every
// participant — pool workers and the applying goroutine — executes this
// same loop, so work balances no matter how many workers actually show
// up.
func (j *applyJob) run() {
	for {
		lo := j.next.Add(j.chunk) - j.chunk
		if lo >= j.limit {
			return
		}
		hi := lo + j.chunk
		if hi > j.limit {
			hi = j.limit
		}
		switch j.kind {
		case kind1q:
			j.s.apply1Range(j.m1, j.b1, int(lo), int(hi))
		case kind2q:
			j.s.apply2Range(j.m2, j.b1, j.b2, int(lo), int(hi))
		case kindCCX:
			j.s.ccxRange(j.b1, j.b2, j.b3, int(lo), int(hi))
		case kindCSwap:
			j.s.cswapRange(j.b1, j.b2, j.b3, int(lo), int(hi))
		}
	}
}

// The worker pool: long-lived goroutines feeding on a buffered job
// channel, started once on first parallel apply. The channel send is
// non-blocking — when every worker is busy (concurrent verifies
// saturating the pool) the applying goroutine simply keeps more chunks
// for itself instead of queueing behind an unrelated state.
var (
	poolOnce sync.Once
	workCh   chan *applyJob
)

func startPool() {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 1 {
		n = 1
	}
	workCh = make(chan *applyJob, 4*n)
	for i := 0; i < n; i++ {
		go func() {
			for j := range workCh {
				j.run()
				j.wg.Done()
			}
		}()
	}
}

// runParallel fans the job out to workers-1 pool participants and joins
// the work itself, returning once every chunk is processed.
func (s *State) runParallel(j *applyJob, workers int) {
	poolOnce.Do(startPool)
	total := int64(len(s.amp))
	chunk := total / int64(workers*applyChunkTarget)
	// Floor the chunk size on the default path; a forced-parallel state
	// (explicit SetWorkers) splits however small the state is, so the
	// equivalence tests genuinely interleave workers.
	minChunk := int64(minChunkAmps)
	if s.workers > 1 {
		minChunk = 1
	}
	if chunk < minChunk {
		chunk = minChunk
	}
	j.s = s
	j.chunk = chunk
	j.limit = total
	j.next.Store(0)
	for i := 0; i < workers-1; i++ {
		j.wg.Add(1)
		select {
		case workCh <- j:
		default:
			// Pool saturated; run the rest on this goroutine.
			j.wg.Done()
			i = workers // break
		}
	}
	j.run()
	j.wg.Wait()
	j.s = nil
	jobPool.Put(j)
}
