package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ssync/internal/circuit"
	"ssync/internal/core"
	"ssync/internal/device"
	"ssync/internal/workloads"
)

// randomCircuit builds a random circuit over the full gate set the dense
// simulator supports: every 1q/2q matrix gate plus ccx and cswap.
func randomCircuit(r *rand.Rand, nq, gates int) *circuit.Circuit {
	names1q := []string{"id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg"}
	rot1q := []string{"rx", "ry", "rz", "u1", "p"}
	names2q := []string{"cx", "cz", "cy", "ch", "swap"}
	rot2q := []string{"cp", "crx", "cry", "crz", "rzz", "rxx", "ryy"}

	pick := func(k int) []int {
		qs := r.Perm(nq)[:k]
		return qs
	}
	c := circuit.NewCircuit(nq)
	for i := 0; i < gates; i++ {
		var g circuit.Gate
		switch r.Intn(8) {
		case 0:
			g = circuit.New(names1q[r.Intn(len(names1q))], pick(1))
		case 1:
			g = circuit.New(rot1q[r.Intn(len(rot1q))], pick(1), r.Float64()*4-2)
		case 2:
			g = circuit.New("u2", pick(1), r.Float64()*4-2, r.Float64()*4-2)
		case 3:
			g = circuit.New("u3", pick(1), r.Float64()*4-2, r.Float64()*4-2, r.Float64()*4-2)
		case 4:
			g = circuit.New(names2q[r.Intn(len(names2q))], pick(2))
		case 5:
			g = circuit.New(rot2q[r.Intn(len(rot2q))], pick(2), r.Float64()*4-2)
		case 6:
			g = circuit.New("ccx", pick(3))
		default:
			g = circuit.New("cswap", pick(3))
		}
		if err := c.Append(g); err != nil {
			panic(err)
		}
	}
	return c
}

// Parallel application must be bit-identical to serial: every base index
// owns its amplitude group, so chunking cannot change any float op.
func TestParallelMatchesSerialExactly(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		nq := 3 + r.Intn(8) // 3..10 qubits, well below the size threshold
		c := randomCircuit(r, nq, 30+r.Intn(40))
		seed := int64(trial)

		serial, err := RandomProductState(nq, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		serial.SetWorkers(1)
		if err := serial.ApplyCircuit(c); err != nil {
			t.Fatal(err)
		}

		workers := 2 + r.Intn(7) // random worker count, forced parallel
		par, err := RandomProductState(nq, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		par.SetWorkers(workers)
		if err := par.ApplyCircuit(c); err != nil {
			t.Fatal(err)
		}

		for i := 0; i < 1<<nq; i++ {
			if serial.Amplitude(i) != par.Amplitude(i) {
				t.Fatalf("trial %d (%d qubits, %d workers): amp[%d] serial %v != parallel %v",
					trial, nq, workers, i, serial.Amplitude(i), par.Amplitude(i))
			}
		}
	}
}

// Above the size threshold a default-workers state picks the parallel
// path on multi-core runtimes; results must still match serial exactly.
func TestParallelLargeStateMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("large-state equivalence skipped in -short")
	}
	r := rand.New(rand.NewSource(23))
	nq := 15 // 32768 amps, past parallelMinAmps
	c := randomCircuit(r, nq, 40)

	serial, err := RandomProductState(nq, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	serial.SetWorkers(1)
	if err := serial.ApplyCircuit(c); err != nil {
		t.Fatal(err)
	}

	par, err := RandomProductState(nq, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	par.SetWorkers(8)
	if err := par.ApplyCircuit(c); err != nil {
		t.Fatal(err)
	}
	for i := range serial.amp {
		if serial.amp[i] != par.amp[i] {
			t.Fatalf("amp[%d]: serial %v != parallel %v", i, serial.amp[i], par.amp[i])
		}
	}
}

func TestSetWorkersResolution(t *testing.T) {
	s, err := NewState(4) // 16 amps, far below the threshold
	if err != nil {
		t.Fatal(err)
	}
	if w := s.effectiveWorkers(); w != 1 {
		t.Errorf("small default state resolved %d workers, want 1 (serial)", w)
	}
	s.SetWorkers(6)
	if w := s.effectiveWorkers(); w < 2 {
		t.Errorf("explicit SetWorkers(6) resolved %d workers, want parallel", w)
	}
	s.SetWorkers(1)
	if w := s.effectiveWorkers(); w != 1 {
		t.Errorf("SetWorkers(1) resolved %d workers, want 1", w)
	}

	old := DefaultWorkers()
	SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Errorf("DefaultWorkers after SetDefaultWorkers(3) = %d", got)
	}
	SetDefaultWorkers(0)
	if got := DefaultWorkers(); got < 1 {
		t.Errorf("DefaultWorkers after reset = %d", got)
	}
	_ = old
}

// Concurrent verifies sharing one cache must simulate the reference
// exactly once (single-flight) and all succeed. Run under -race this is
// also the data-race check for the shared reference and the worker pool.
func TestRefCacheSingleFlightConcurrent(t *testing.T) {
	topo := device.Grid(2, 2, 6)
	src := workloads.QFT(8)
	res, err := core.Compile(core.DefaultConfig(), src, topo)
	if err != nil {
		t.Fatal(err)
	}

	cache := NewRefCache(0)
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = cache.Verify(src, res.Schedule, 42)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	st := cache.Stats()
	if st.Misses != 1 {
		t.Errorf("reference simulated %d times for %d concurrent verifies, want 1", st.Misses, goroutines)
	}
	if st.Hits != goroutines-1 {
		t.Errorf("hits = %d, want %d", st.Hits, goroutines-1)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
	if st.Bytes != 2*(1<<8)*16 {
		t.Errorf("bytes = %d, want %d", st.Bytes, 2*(1<<8)*16)
	}
}

// The cached-reference verify must agree with the from-scratch one, and
// distinct circuits/seeds must key separately.
func TestRefCacheKeying(t *testing.T) {
	topo := device.Grid(2, 2, 6)
	cache := NewRefCache(0)
	for i, src := range []*circuit.Circuit{workloads.BV(6), workloads.QFT(6)} {
		res, err := core.Compile(core.DefaultConfig(), src, topo)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 2; seed++ {
			if err := VerifySchedule(src, res.Schedule, seed); err != nil {
				t.Fatalf("fresh verify: %v", err)
			}
			if err := cache.Verify(src, res.Schedule, seed); err != nil {
				t.Fatalf("cached verify: %v", err)
			}
		}
		want := uint64(2 * (i + 1))
		if st := cache.Stats(); st.Misses != want {
			t.Fatalf("after circuit %d: misses = %d, want %d (distinct (circuit, seed) pairs)", i, st.Misses, want)
		}
	}
	// Same circuit content in a different *Circuit value hits the cache.
	again := workloads.BV(6)
	if _, err := cache.Get(again, 0); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != 4 {
		t.Errorf("content-identical circuit missed: misses = %d, want 4", st.Misses)
	}
}

// Build failures (non-unitary circuits) must not be cached: each Get
// retries, and the cache holds no entry for them.
func TestRefCacheErrorsNotCached(t *testing.T) {
	cache := NewRefCache(0)
	c := circuit.NewCircuit(2)
	c.H(0).Measure(0)
	for i := 0; i < 2; i++ {
		if _, err := cache.Get(c, 1); err == nil {
			t.Fatal("expected error for non-unitary circuit")
		}
	}
	st := cache.Stats()
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (errors retry)", st.Misses)
	}
	if st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("failed builds left %d entries / %d bytes in the cache", st.Entries, st.Bytes)
	}
}

// The cache must stay under its byte bound, evicting least-recently-used
// references.
func TestRefCacheEviction(t *testing.T) {
	// Room for two 6-qubit references (2 states × 64 amps × 16 B = 2048 B).
	src := circuit.NewCircuit(6)
	src.H(0).CX(0, 1).CX(1, 2).CX(2, 3).CX(3, 4).CX(4, 5)
	cache := NewRefCache(2 * 2048)
	for seed := int64(0); seed < 5; seed++ {
		if _, err := cache.Get(src, seed); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2 after eviction", st.Entries)
	}
	if st.Bytes > 2*2048 {
		t.Errorf("bytes = %d exceeds bound %d", st.Bytes, 2*2048)
	}
	// Seed 4 is the most recent; it must still be cached.
	before := cache.Stats().Misses
	if _, err := cache.Get(src, 4); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Misses; got != before {
		t.Errorf("most-recent entry was evicted (misses %d -> %d)", before, got)
	}
}

// VerifySchedule through a shared reference must still reject schedules
// that diverge from the source circuit.
func TestRefCacheVerifyCatchesDivergence(t *testing.T) {
	topo := device.Grid(2, 2, 6)
	src := workloads.BV(6)
	res, err := core.Compile(core.DefaultConfig(), src, topo)
	if err != nil {
		t.Fatal(err)
	}
	wrong := workloads.QFT(6)
	cache := NewRefCache(0)
	if err := cache.Verify(wrong, res.Schedule, 7); err == nil {
		t.Fatal("verify accepted a schedule compiled from a different circuit")
	}
}

func BenchmarkStateVecApply(b *testing.B) {
	for _, nq := range []int{16, 18} {
		for _, workers := range []int{1, 0} {
			mode := "serial"
			if workers == 0 {
				mode = "default"
			}
			b.Run(fmt.Sprintf("q%d/%s", nq, mode), func(b *testing.B) {
				s, err := NewState(nq)
				if err != nil {
					b.Fatal(err)
				}
				s.SetWorkers(workers)
				h := circuit.New("h", []int{nq / 2})
				cx := circuit.New("cx", []int{0, nq - 1})
				b.SetBytes(int64(16 << uint(nq)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := s.Apply(h); err != nil {
						b.Fatal(err)
					}
					if err := s.Apply(cx); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkVerifyScheduleParallel measures the full verify path on an
// 18-qubit compiled schedule: "fresh" re-simulates the reference every
// iteration (the old VerifySchedule behaviour), "shared" resolves it
// from a warm RefCache and only replays the schedule — the portfolio
// steady state.
func BenchmarkVerifyScheduleParallel(b *testing.B) {
	topo := device.Grid(3, 3, 6)
	src := workloads.QFT(18)
	res, err := core.Compile(core.DefaultConfig(), src, topo)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := VerifySchedule(src, res.Schedule, 42); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shared", func(b *testing.B) {
		cache := NewRefCache(0)
		if _, err := cache.Get(src, 42); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cache.Verify(src, res.Schedule, 42); err != nil {
				b.Fatal(err)
			}
		}
	})
}
