package sim

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"ssync/internal/circuit"
	"ssync/internal/schedule"
)

// Shared-reference verification. Verifying a compiled schedule needs two
// simulations: the source circuit evolved on a seeded witness input (the
// reference), and the schedule's logical gate stream replayed on the same
// input. The reference depends only on (source circuit, seed) — portfolio
// entrants, route variants and ablation sweeps all share it — so it is
// cached here and each caller pays only for its own replay.

// Reference is a verification reference for one (source circuit, seed)
// pair: the witness input state and the state the source circuit evolves
// it into. Immutable once built; safe for concurrent VerifySchedule.
type Reference struct {
	input  *State // seeded witness product state
	output *State // input evolved through the source circuit's basis gates
}

// NewReference simulates the verification reference for src under seed.
// Fails for non-unitary or oversized circuits, exactly as VerifySchedule
// does.
func NewReference(src *circuit.Circuit, seed int64) (*Reference, error) {
	if src.NumQubits > MaxStateQubits {
		return nil, fmt.Errorf("sim: %d qubits exceeds the dense simulator limit %d", src.NumQubits, MaxStateQubits)
	}
	rng := rand.New(rand.NewSource(seed))
	input, err := RandomProductState(src.NumQubits, rng)
	if err != nil {
		return nil, err
	}
	output := input.Clone()
	basis := src.DecomposeToBasis()
	for _, g := range basis.Gates {
		if g.Name == "measure" || g.Name == "reset" {
			return nil, fmt.Errorf("sim: VerifySchedule requires a unitary circuit (found %q)", g.Name)
		}
		if err := output.Apply(g); err != nil {
			return nil, err
		}
	}
	return &Reference{input: input, output: output}, nil
}

// NumQubits returns the reference's qubit count.
func (r *Reference) NumQubits() int { return r.input.n }

// bytes is the resident amplitude storage, for cache accounting.
func (r *Reference) bytes() int64 {
	return int64(len(r.input.amp)+len(r.output.amp)) * 16
}

// replayPool recycles the scratch states schedule replays run on, so a
// verify allocates nothing once a same-or-larger state has been through:
// copyFrom reuses the pooled backing array when it fits.
var replayPool = sync.Pool{New: func() any { return new(State) }}

// VerifySchedule replays sched's logical gate stream on the reference's
// witness input and checks the result matches the reference output up to
// global phase. The replay runs on a pooled scratch state — no 2^n-sized
// allocation per call in steady state.
func (r *Reference) VerifySchedule(sched *schedule.Schedule) error {
	if r.input.n != sched.NumQubits {
		return fmt.Errorf("sim: circuit has %d qubits, schedule %d", r.input.n, sched.NumQubits)
	}
	got := replayPool.Get().(*State)
	defer replayPool.Put(got)
	got.copyFrom(r.input)
	got.workers = 0
	for _, op := range sched.Ops {
		switch op.Kind {
		case schedule.Gate1Q, schedule.Gate2Q:
			g := circuit.Gate{Name: op.Name, Qubits: op.Qubits, Params: op.Params}
			if err := got.Apply(g); err != nil {
				return err
			}
		case schedule.Measure:
			return fmt.Errorf("sim: VerifySchedule requires a unitary schedule (found measure)")
		}
		// Transport, inserted SWAPs and barriers relocate ions but leave
		// logical states untouched — skipped, as in Schedule.LogicalGates.
	}
	if ov := Overlap(r.output, got); ov < 1-1e-7 {
		return fmt.Errorf("sim: schedule diverges from source circuit (overlap %.9f)", ov)
	}
	return nil
}

// refKey addresses a cached reference: digest of the source circuit's
// full gate stream plus the witness seed.
type refKey struct {
	digest [sha256.Size]byte
	seed   int64
}

func keyOf(src *circuit.Circuit, seed int64) refKey {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(src.NumQubits))
	h.Write(buf[:])
	for _, g := range src.Gates {
		// Length-prefix the name so gate boundaries can never alias.
		binary.LittleEndian.PutUint64(buf[:], uint64(len(g.Name)))
		h.Write(buf[:])
		h.Write([]byte(g.Name))
		binary.LittleEndian.PutUint64(buf[:], uint64(len(g.Qubits)))
		h.Write(buf[:])
		for _, q := range g.Qubits {
			binary.LittleEndian.PutUint64(buf[:], uint64(q))
			h.Write(buf[:])
		}
		binary.LittleEndian.PutUint64(buf[:], uint64(len(g.Params)))
		h.Write(buf[:])
		for _, p := range g.Params {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p))
			h.Write(buf[:])
		}
		if g.Cond != nil {
			fmt.Fprintf(h, "if%d\x00%s==%d/%d", len(g.Cond.Creg), g.Cond.Creg, g.Cond.Value, g.Cond.Width)
		}
	}
	var k refKey
	h.Sum(k.digest[:0])
	k.seed = seed
	return k
}

// refEntry is one cache slot. ready closes when the reference (or the
// error building it) is available; waiters block on it, giving
// single-flight population without holding the cache lock across a
// simulation.
type refEntry struct {
	key   refKey
	ready chan struct{}
	ref   *Reference
	err   error
	elem  *list.Element
}

// RefCache is a byte-bounded LRU of verification references with
// single-flight population: N concurrent verifies of the same source
// circuit simulate the reference once and share it.
type RefCache struct {
	mu       sync.Mutex
	entries  map[refKey]*refEntry
	order    *list.List // front = most recent; holds *refEntry
	maxBytes int64
	bytes    int64

	hits   atomic.Uint64
	misses atomic.Uint64
}

// DefaultRefCacheBytes bounds the process-wide SharedRefs cache: room
// for two max-size references (a 22-qubit reference is two 64 MiB
// states), plenty for the many small ones tests and mixed traffic hold.
const DefaultRefCacheBytes = 512 << 20

// SharedRefs is the process-wide reference cache the verify-statevec
// pass goes through, so every verifying pipeline in the process shares
// one pool of simulated references.
var SharedRefs = NewRefCache(DefaultRefCacheBytes)

// NewRefCache returns a reference cache holding at most maxBytes of
// amplitude data (<= 0 selects DefaultRefCacheBytes).
func NewRefCache(maxBytes int64) *RefCache {
	if maxBytes <= 0 {
		maxBytes = DefaultRefCacheBytes
	}
	return &RefCache{
		entries:  make(map[refKey]*refEntry),
		order:    list.New(),
		maxBytes: maxBytes,
	}
}

// Get returns the reference for (src, seed), simulating it at most once
// per cache lifetime no matter how many goroutines ask concurrently.
// Build errors are not cached; the next Get retries.
func (c *RefCache) Get(src *circuit.Circuit, seed int64) (*Reference, error) {
	k := keyOf(src, seed)
	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		if e.elem != nil {
			c.order.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.ready
		return e.ref, e.err
	}
	e := &refEntry{key: k, ready: make(chan struct{})}
	c.entries[k] = e
	c.mu.Unlock()
	c.misses.Add(1)

	e.ref, e.err = NewReference(src, seed)
	close(e.ready)

	c.mu.Lock()
	if e.err != nil {
		// Don't cache failures — only drop the entry if it is still ours
		// (a concurrent failure may already have been replaced).
		if c.entries[k] == e {
			delete(c.entries, k)
		}
	} else {
		e.elem = c.order.PushFront(e)
		c.bytes += e.ref.bytes()
		for c.bytes > c.maxBytes && c.order.Len() > 1 {
			back := c.order.Back()
			old := back.Value.(*refEntry)
			c.order.Remove(back)
			delete(c.entries, old.key)
			c.bytes -= old.ref.bytes()
		}
	}
	c.mu.Unlock()
	return e.ref, e.err
}

// Verify resolves the shared reference for (src, seed) and verifies
// sched against it. Drop-in for VerifySchedule when many schedules
// derive from one source circuit.
func (c *RefCache) Verify(src *circuit.Circuit, sched *schedule.Schedule, seed int64) error {
	if src.NumQubits != sched.NumQubits {
		return fmt.Errorf("sim: circuit has %d qubits, schedule %d", src.NumQubits, sched.NumQubits)
	}
	ref, err := c.Get(src, seed)
	if err != nil {
		return err
	}
	return ref.VerifySchedule(sched)
}

// RefCacheStats is a point-in-time view of a reference cache.
type RefCacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes"`
}

// Stats snapshots the cache's counters and occupancy.
func (c *RefCache) Stats() RefCacheStats {
	c.mu.Lock()
	entries, bytes := c.order.Len(), c.bytes
	c.mu.Unlock()
	return RefCacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Entries: entries,
		Bytes:   bytes,
	}
}

// Stats is the simulator's process-wide counter snapshot, mirrored into
// engine stats, /v2/stats and the ssync_sim_* metric families.
type Stats struct {
	// ParallelApplies / SerialApplies count gate applications by
	// execution mode across every State in the process.
	ParallelApplies uint64 `json:"parallel_applies"`
	SerialApplies   uint64 `json:"serial_applies"`
	// Workers is the resolved process-default worker budget.
	Workers int `json:"workers"`
	// RefCache is the SharedRefs verification-reference cache view.
	RefCache RefCacheStats `json:"ref_cache"`
}

// Snapshot collects the process-wide simulator counters.
func Snapshot() Stats {
	return Stats{
		ParallelApplies: cParallelApplies.Load(),
		SerialApplies:   cSerialApplies.Load(),
		Workers:         DefaultWorkers(),
		RefCache:        SharedRefs.Stats(),
	}
}
