package sim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"ssync/internal/circuit"
	"ssync/internal/workloads"
)

// These tests pin down that the workload generators produce the algorithms
// they claim, and that the peephole optimizer is semantics-preserving —
// both checked against the dense state-vector simulator.

// TestAdderActuallyAdds drives the Cuccaro adder with computational basis
// inputs and checks a + b (mod 2^n) plus carry-out.
func TestAdderActuallyAdds(t *testing.T) {
	bits := 3
	c := workloads.Adder(bits) // qubits: cin=0, b_i=1+2i, a_i=2+2i, cout=2b+1
	n := c.NumQubits
	for a := 0; a < 1<<bits; a++ {
		for b := 0; b < 1<<bits; b++ {
			s, err := NewState(n)
			if err != nil {
				t.Fatal(err)
			}
			// Prepare |a>|b> by X gates on the interleaved layout.
			for i := 0; i < bits; i++ {
				if a>>uint(i)&1 == 1 {
					s.Apply(circuit.New("x", []int{2 + 2*i}))
				}
				if b>>uint(i)&1 == 1 {
					s.Apply(circuit.New("x", []int{1 + 2*i}))
				}
			}
			if err := s.ApplyCircuit(c); err != nil {
				t.Fatal(err)
			}
			// Expected output: b register holds a+b mod 2^bits, cout holds
			// the carry, a register restored.
			sum := a + b
			want := 0
			for i := 0; i < bits; i++ {
				if a>>uint(i)&1 == 1 {
					want |= 1 << uint(2+2*i)
				}
				if sum>>uint(i)&1 == 1 {
					want |= 1 << uint(1+2*i)
				}
			}
			if sum>>uint(bits)&1 == 1 {
				want |= 1 << uint(2*bits+1)
			}
			if p := s.Probability(want); math.Abs(p-1) > 1e-9 {
				t.Fatalf("adder(%d+%d): P(expected output) = %g, want 1", a, b, p)
			}
		}
	}
}

// TestBVRecoversSecret checks the Bernstein-Vazirani output concentrates
// on the all-ones secret string.
func TestBVRecoversSecret(t *testing.T) {
	n := 6
	c := workloads.BV(n)
	s, err := NewState(c.NumQubits)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyCircuit(c); err != nil {
		t.Fatal(err)
	}
	// Data register (qubits 0..n-1) must read the secret 111111; the
	// ancilla is in |-> so sum both its branches.
	secret := 1<<uint(n) - 1
	p := s.Probability(secret) + s.Probability(secret|1<<uint(n))
	if math.Abs(p-1) > 1e-9 {
		t.Fatalf("BV: P(secret) = %g, want 1", p)
	}
}

// TestQFTMatchesDFT verifies the generator against the analytic discrete
// Fourier transform on basis states: QFT|x> = (1/√N) Σ_k e^{2πi xk/N}|k>
// with the generator's big-endian wire convention.
func TestQFTMatchesDFT(t *testing.T) {
	n := 4
	N := 1 << uint(n)
	c := workloads.QFT(n)
	for _, x := range []int{0, 1, 5, 12, 15} {
		s, err := NewState(n)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if x>>uint(i)&1 == 1 {
				s.Apply(circuit.New("x", []int{i}))
			}
		}
		if err := s.ApplyCircuit(c); err != nil {
			t.Fatal(err)
		}
		// The generator treats qubit 0 as the most significant bit of x and
		// omits the final wire-reversal swaps, so the output amplitude for
		// index k (with qubit 0 the LSB of k) equals DFT at bit-reversed
		// positions. Check via explicit formula: amplitude of |k> is
		// (1/√N)·exp(2πi·rev(x)·... ) — instead verify the defining
		// product form qubit by qubit: after QFT without swaps, qubit j is
		// in state (|0> + e^{2πi x / 2^{j+1}} |1>)/√2 where x's bits are
		// read with qubit 0 as MSB.
		xval := 0
		for i := 0; i < n; i++ {
			if x>>uint(i)&1 == 1 {
				xval |= 1 << uint(n-1-i) // qubit i is bit n-1-i of the value
			}
		}
		// The cp -> rz+cx decomposition introduces a global phase, so
		// compare via the state overlap |<want|got>|.
		overlap := complex(0, 0)
		for k := 0; k < N; k++ {
			want := complex(1/math.Sqrt(float64(N)), 0)
			for j := 0; j < n; j++ {
				if k>>uint(j)&1 == 1 {
					// Qubit j ends in (|0> + e^{2πi·x/2^{n-j}}|1>)/√2.
					phase := 2 * math.Pi * float64(xval) / math.Pow(2, float64(n-j))
					want *= cmplx.Exp(complex(0, phase))
				}
			}
			overlap += cmplx.Conj(want) * s.Amplitude(k)
		}
		if math.Abs(cmplx.Abs(overlap)-1) > 1e-9 {
			t.Fatalf("QFT|%d>: |<DFT|got>| = %g, want 1", x, cmplx.Abs(overlap))
		}
	}
}

// Property: Optimize preserves circuit semantics on random circuits.
func TestOptimizePreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nq := 2 + r.Intn(4)
		c := circuit.NewCircuit(nq)
		names := []string{"h", "x", "s", "sdg", "t", "tdg"}
		for i := 0; i < 5+r.Intn(40); i++ {
			switch r.Intn(5) {
			case 0:
				c.RZ(r.Float64()*4-2, r.Intn(nq))
			case 1:
				c.Append(circuit.New(names[r.Intn(len(names))], []int{r.Intn(nq)}))
			case 2:
				c.RX(r.Float64()*4-2, r.Intn(nq))
			default:
				a := r.Intn(nq)
				b := r.Intn(nq - 1)
				if b >= a {
					b++
				}
				c.CX(a, b)
			}
		}
		o := circuit.Optimize(c)
		if len(o.Gates) > len(c.Gates) {
			return false // must never grow
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		ref, _ := RandomProductState(nq, rng)
		want := ref.Clone()
		if err := want.ApplyCircuit(c); err != nil {
			return false
		}
		got := ref.Clone()
		if err := got.ApplyCircuit(o); err != nil {
			return false
		}
		return Overlap(want, got) > 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the optimizer is idempotent.
func TestOptimizeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nq := 2 + r.Intn(3)
		c := circuit.NewCircuit(nq)
		for i := 0; i < 5+r.Intn(20); i++ {
			if r.Intn(2) == 0 {
				c.H(r.Intn(nq))
			} else {
				a := r.Intn(nq)
				b := r.Intn(nq - 1)
				if b >= a {
					b++
				}
				c.CX(a, b)
			}
		}
		once := circuit.Optimize(c)
		twice := circuit.Optimize(once)
		return len(once.Gates) == len(twice.Gates)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: any greedy execution order of the commutation-aware DAG is
// unitarily equivalent to program order. This validates the commutation
// rules themselves (Z-runs, X-runs, cx control/target roles) against the
// state-vector simulator.
func TestCommutationDAGPreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nq := 2 + r.Intn(4)
		c := circuit.NewCircuit(nq)
		for i := 0; i < 5+r.Intn(30); i++ {
			switch r.Intn(6) {
			case 0:
				c.RZ(r.Float64()*2-1, r.Intn(nq))
			case 1:
				c.T(r.Intn(nq))
			case 2:
				c.X(r.Intn(nq))
			case 3:
				c.RX(r.Float64()*2-1, r.Intn(nq))
			case 4:
				c.H(r.Intn(nq))
			default:
				a := r.Intn(nq)
				b := r.Intn(nq - 1)
				if b >= a {
					b++
				}
				c.CX(a, b)
			}
		}
		d := circuit.NewCommutationDAG(c)
		reordered := circuit.NewCircuit(nq)
		for !d.Done() {
			fr := d.Frontier()
			id := fr[r.Intn(len(fr))]
			if err := reordered.Append(d.Gate(id)); err != nil {
				return false
			}
			d.Complete(id)
		}
		rng := rand.New(rand.NewSource(seed ^ 0x77))
		ref, _ := RandomProductState(nq, rng)
		want := ref.Clone()
		if err := want.ApplyCircuit(c); err != nil {
			return false
		}
		got := ref.Clone()
		if err := got.ApplyCircuit(reordered); err != nil {
			return false
		}
		return Overlap(want, got) > 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
