package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ssync/internal/circuit"
	"ssync/internal/core"
	"ssync/internal/device"
	"ssync/internal/mapping"
	"ssync/internal/noise"
	"ssync/internal/schedule"
	"ssync/internal/workloads"
)

func TestBellState(t *testing.T) {
	s, err := NewState(2)
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.NewCircuit(2)
	c.H(0).CX(0, 1)
	if err := s.ApplyCircuit(c); err != nil {
		t.Fatal(err)
	}
	inv2 := 1 / math.Sqrt2
	if a := s.Amplitude(0); math.Abs(real(a)-inv2) > 1e-12 {
		t.Errorf("amp[00] = %v", a)
	}
	if a := s.Amplitude(3); math.Abs(real(a)-inv2) > 1e-12 {
		t.Errorf("amp[11] = %v", a)
	}
	if a := s.Amplitude(1); real(a) != 0 || imag(a) != 0 {
		t.Errorf("amp[01] = %v, want 0", a)
	}
}

func TestGateInverses(t *testing.T) {
	// Each pair applied in sequence must be the identity on a random state.
	pairs := [][]circuit.Gate{
		{circuit.New("h", []int{0}), circuit.New("h", []int{0})},
		{circuit.New("x", []int{0}), circuit.New("x", []int{0})},
		{circuit.New("s", []int{0}), circuit.New("sdg", []int{0})},
		{circuit.New("t", []int{0}), circuit.New("tdg", []int{0})},
		{circuit.New("sx", []int{0}), circuit.New("sxdg", []int{0})},
		{circuit.New("rx", []int{0}, 0.7), circuit.New("rx", []int{0}, -0.7)},
		{circuit.New("cx", []int{0, 1}), circuit.New("cx", []int{0, 1})},
		{circuit.New("swap", []int{0, 1}), circuit.New("swap", []int{0, 1})},
		{circuit.New("rzz", []int{0, 1}, 0.3), circuit.New("rzz", []int{0, 1}, -0.3)},
		{circuit.New("rxx", []int{0, 1}, 0.3), circuit.New("rxx", []int{0, 1}, -0.3)},
		{circuit.New("ryy", []int{0, 1}, 0.3), circuit.New("ryy", []int{0, 1}, -0.3)},
	}
	rng := rand.New(rand.NewSource(7))
	for _, pair := range pairs {
		ref, err := RandomProductState(2, rng)
		if err != nil {
			t.Fatal(err)
		}
		got := ref.Clone()
		for _, g := range pair {
			if err := got.Apply(g); err != nil {
				t.Fatalf("%s: %v", g, err)
			}
		}
		if ov := Overlap(ref, got); ov < 1-1e-10 {
			t.Errorf("%s then %s is not identity (overlap %g)", pair[0], pair[1], ov)
		}
	}
}

func TestSwapEqualsThreeCX(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ref, _ := RandomProductState(2, rng)
	viaSwap := ref.Clone()
	viaCX := ref.Clone()
	viaSwap.Apply(circuit.New("swap", []int{0, 1}))
	for _, g := range []circuit.Gate{
		circuit.New("cx", []int{0, 1}),
		circuit.New("cx", []int{1, 0}),
		circuit.New("cx", []int{0, 1}),
	} {
		viaCX.Apply(g)
	}
	if ov := Overlap(viaSwap, viaCX); ov < 1-1e-10 {
		t.Errorf("swap != cx·cx·cx (overlap %g)", ov)
	}
}

// Property: DecomposeToBasis preserves semantics for every composite gate.
func TestDecompositionsPreserveSemantics(t *testing.T) {
	composites := []circuit.Gate{
		circuit.New("cz", []int{0, 1}),
		circuit.New("cy", []int{0, 1}),
		circuit.New("ch", []int{0, 1}),
		circuit.New("cp", []int{0, 1}, 0.9),
		circuit.New("cu1", []int{0, 1}, -1.3),
		circuit.New("crz", []int{0, 1}, 0.4),
		circuit.New("crx", []int{0, 1}, 1.1),
		circuit.New("cry", []int{0, 1}, -0.8),
		circuit.New("rzz", []int{0, 1}, 0.5),
		circuit.New("rxx", []int{0, 1}, 0.5),
		circuit.New("ryy", []int{0, 1}, 0.5),
		circuit.New("ms", []int{0, 1}, 0.5),
		circuit.New("ccx", []int{0, 1, 2}),
		circuit.New("cswap", []int{0, 1, 2}),
	}
	rng := rand.New(rand.NewSource(23))
	for _, g := range composites {
		n := 3
		src := circuit.NewCircuit(n)
		if err := src.Append(g); err != nil {
			t.Fatal(err)
		}
		ref, _ := RandomProductState(n, rng)
		direct := ref.Clone()
		if err := direct.Apply(g); err != nil {
			t.Fatalf("direct apply %s: %v", g, err)
		}
		dec := ref.Clone()
		if err := dec.ApplyCircuit(src.DecomposeToBasis()); err != nil {
			t.Fatalf("decomposed apply %s: %v", g, err)
		}
		if ov := Overlap(direct, dec); ov < 1-1e-9 {
			t.Errorf("%s decomposition diverges (overlap %.12f)", g, ov)
		}
	}
}

func TestStateSizeLimits(t *testing.T) {
	if _, err := NewState(0); err == nil {
		t.Error("NewState(0) accepted")
	}
	if _, err := NewState(MaxStateQubits + 1); err == nil {
		t.Error("oversized state accepted")
	}
}

func TestRunTimingBasics(t *testing.T) {
	topo := device.Linear(2, 4)
	s := schedule.New(2)
	s.Append(schedule.Op{Kind: schedule.Gate1Q, Name: "h", Qubits: []int{0}, Trap: 0, ChainLen: 2})
	s.Append(schedule.Op{Kind: schedule.Gate2Q, Name: "cx", Qubits: []int{0, 1}, Trap: 0, ChainLen: 2})
	opt := DefaultOptions()
	m := Run(s, topo, opt)
	wantTime := opt.Params.OneQubitTime + opt.Params.TwoQubitTime(2, 0)
	if math.Abs(m.ExecutionTime-wantTime) > 1e-9 {
		t.Errorf("ExecutionTime = %g, want %g", m.ExecutionTime, wantTime)
	}
	if m.SuccessRate <= 0 || m.SuccessRate >= 1 {
		t.Errorf("SuccessRate = %g, want in (0,1)", m.SuccessRate)
	}
}

func TestRunParallelTraps(t *testing.T) {
	// Gates in different traps overlap in time.
	topo := device.Linear(2, 4)
	s := schedule.New(4)
	s.Append(schedule.Op{Kind: schedule.Gate2Q, Name: "cx", Qubits: []int{0, 1}, Trap: 0, ChainLen: 2})
	s.Append(schedule.Op{Kind: schedule.Gate2Q, Name: "cx", Qubits: []int{2, 3}, Trap: 1, ChainLen: 2})
	opt := DefaultOptions()
	m := Run(s, topo, opt)
	if want := opt.Params.TwoQubitTime(2, 0); math.Abs(m.ExecutionTime-want) > 1e-9 {
		t.Errorf("parallel gates: time = %g, want %g", m.ExecutionTime, want)
	}
}

func TestRunShuttleTimeAndHeating(t *testing.T) {
	topo := device.Grid(1, 2, 4) // one junction on the segment
	s := schedule.New(2)
	s.Append(schedule.Op{Kind: schedule.Split, Qubits: []int{0}, Trap: 0, ChainLen: 2})
	s.Append(schedule.Op{Kind: schedule.Move, Qubits: []int{0}, Segment: 0, Hops: 1})
	s.Append(schedule.Op{Kind: schedule.JunctionCross, Qubits: []int{0}, Segment: 0, Junctions: 1})
	s.Append(schedule.Op{Kind: schedule.Merge, Qubits: []int{0}, Trap: 1, ChainLen: 2})
	s.Append(schedule.Op{Kind: schedule.Gate2Q, Name: "cx", Qubits: []int{0, 1}, Trap: 1, ChainLen: 2})
	opt := DefaultOptions()
	p := opt.Params
	m := Run(s, topo, opt)
	wantTransport := p.SplitTime + p.MoveTime + p.JunctionTime(1) + p.MergeTime
	if want := wantTransport + p.TwoQubitTime(2, 0); math.Abs(m.ExecutionTime-want) > 1e-9 {
		t.Errorf("time = %g, want %g", m.ExecutionTime, want)
	}
	// Split heats the source chain (k1/2); merge heats the destination
	// chain (k1/2) plus the shuttled-segment quanta k2. Max is per trap.
	if want := p.K1/2 + p.K2; math.Abs(m.MaxNbar-want) > 1e-12 {
		t.Errorf("MaxNbar = %g, want %g (k1/2 merge + k2 shuttle)", m.MaxNbar, want)
	}
	// Success must be lower than the same gate without transport heat.
	noShuttle := schedule.New(2)
	noShuttle.Append(schedule.Op{Kind: schedule.Gate2Q, Name: "cx", Qubits: []int{0, 1}, Trap: 1, ChainLen: 2})
	m2 := Run(noShuttle, topo, opt)
	if m.SuccessRate >= m2.SuccessRate {
		t.Errorf("heated success %g >= unheated %g", m.SuccessRate, m2.SuccessRate)
	}
}

func TestPerfectModes(t *testing.T) {
	topo := device.Linear(2, 4)
	s := schedule.New(2)
	s.Append(schedule.Op{Kind: schedule.SwapGate, Qubits: []int{0, 1}, Trap: 0, ChainLen: 2})
	s.Append(schedule.Op{Kind: schedule.Split, Qubits: []int{0}, Trap: 0, ChainLen: 2})
	s.Append(schedule.Op{Kind: schedule.Move, Qubits: []int{0}, Segment: 0, Hops: 1})
	s.Append(schedule.Op{Kind: schedule.Merge, Qubits: []int{0}, Trap: 1, ChainLen: 2})
	s.Append(schedule.Op{Kind: schedule.Gate2Q, Name: "cx", Qubits: []int{0, 1}, Trap: 1, ChainLen: 2})

	base := Run(s, topo, DefaultOptions())
	ps := DefaultOptions()
	ps.PerfectShuttle = true
	shuttle := Run(s, topo, ps)
	pw := DefaultOptions()
	pw.PerfectSwap = true
	swap := Run(s, topo, pw)
	both := DefaultOptions()
	both.PerfectShuttle, both.PerfectSwap = true, true
	ideal := Run(s, topo, both)

	if !(ideal.SuccessRate >= shuttle.SuccessRate && shuttle.SuccessRate >= base.SuccessRate) {
		t.Errorf("ordering violated: ideal=%g shuttle=%g base=%g",
			ideal.SuccessRate, shuttle.SuccessRate, base.SuccessRate)
	}
	if !(ideal.SuccessRate >= swap.SuccessRate && swap.SuccessRate >= base.SuccessRate) {
		t.Errorf("ordering violated: ideal=%g swap=%g base=%g",
			ideal.SuccessRate, swap.SuccessRate, base.SuccessRate)
	}
	if shuttle.ExecutionTime >= base.ExecutionTime {
		t.Errorf("perfect shuttle not faster: %g >= %g", shuttle.ExecutionTime, base.ExecutionTime)
	}
}

func TestRunGateModels(t *testing.T) {
	topo := device.Linear(1, 12)
	s := schedule.New(2)
	s.Append(schedule.Op{Kind: schedule.Gate2Q, Name: "cx", Qubits: []int{0, 1}, Trap: 0, ChainLen: 10, IonDist: 4})
	for _, model := range []noise.GateModel{noise.FM, noise.PM, noise.AM1, noise.AM2} {
		opt := DefaultOptions()
		opt.Params.Model = model
		m := Run(s, topo, opt)
		if want := model.TwoQubitTime(10, 4); math.Abs(m.ExecutionTime-want) > 1e-9 {
			t.Errorf("%s: time = %g, want %g", model, m.ExecutionTime, want)
		}
	}
}

// The flagship integration property: for random circuits on random
// topologies, the S-SYNC-compiled schedule is semantically identical to
// the source circuit under state-vector simulation.
func TestCompiledScheduleSemantics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		topos := []*device.Topology{
			device.Linear(2, 4), device.Grid(2, 2, 3), device.Star(4, 3),
		}
		topo := topos[r.Intn(len(topos))]
		nq := 3 + r.Intn(5)
		if nq > topo.TotalCapacity()-2 {
			nq = topo.TotalCapacity() - 2
		}
		c := circuit.NewCircuit(nq)
		oneQ := []string{"h", "t", "s", "x"}
		for i := 0; i < 4+r.Intn(25); i++ {
			if r.Intn(3) == 0 {
				c.Append(circuit.New(oneQ[r.Intn(len(oneQ))], []int{r.Intn(nq)}))
			} else {
				a := r.Intn(nq)
				b := r.Intn(nq - 1)
				if b >= a {
					b++
				}
				c.CX(a, b)
			}
		}
		cfg := core.DefaultConfig()
		strategies := []mapping.Strategy{mapping.EvenDivided, mapping.Gathering, mapping.STA}
		cfg.Mapping.Strategy = strategies[r.Intn(len(strategies))]
		res, err := core.Compile(cfg, c, topo)
		if err != nil {
			t.Logf("seed %d: compile: %v", seed, err)
			return false
		}
		if err := VerifySchedule(c, res.Schedule, seed); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestVerifyScheduleDetectsCorruption(t *testing.T) {
	topo := device.Linear(2, 4)
	c := circuit.NewCircuit(3)
	c.H(0).CX(0, 1).CX(1, 2)
	res, err := core.Compile(core.DefaultConfig(), c, topo)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySchedule(c, res.Schedule, 1); err != nil {
		t.Fatalf("clean schedule rejected: %v", err)
	}
	// Corrupt: flip a gate's qubits.
	for i, op := range res.Schedule.Ops {
		if op.Kind == schedule.Gate2Q {
			res.Schedule.Ops[i].Qubits = []int{op.Qubits[1], op.Qubits[0]}
			break
		}
	}
	if err := VerifySchedule(c, res.Schedule, 1); err == nil {
		t.Error("corrupted schedule passed verification")
	}
}

func TestEndToEndQFTMetrics(t *testing.T) {
	topo := device.Grid(2, 2, 6)
	c := workloads.QFT(12)
	res, err := core.Compile(core.DefaultConfig(), c, topo)
	if err != nil {
		t.Fatal(err)
	}
	m := Run(res.Schedule, topo, DefaultOptions())
	if m.ExecutionTime <= 0 {
		t.Error("non-positive execution time")
	}
	if m.SuccessRate <= 0 || m.SuccessRate >= 1 {
		t.Errorf("success rate = %g", m.SuccessRate)
	}
	if m.Counts.TwoQubit != c.TwoQubitCount() {
		t.Errorf("2Q count %d, want %d", m.Counts.TwoQubit, c.TwoQubitCount())
	}
}

func TestT2IdleDephasing(t *testing.T) {
	topo := device.Linear(2, 4)
	s := schedule.New(2)
	// q0 works for a while before the joint gate; q1 idles.
	s.Append(schedule.Op{Kind: schedule.Gate1Q, Name: "h", Qubits: []int{0}, Trap: 0, ChainLen: 2})
	s.Append(schedule.Op{Kind: schedule.Gate2Q, Name: "cx", Qubits: []int{0, 1}, Trap: 0, ChainLen: 2})

	base := Run(s, topo, DefaultOptions())

	withT2 := DefaultOptions()
	withT2.Params.T2 = 100 // aggressively short coherence
	decohered := Run(s, topo, withT2)
	if decohered.SuccessRate >= base.SuccessRate {
		t.Errorf("T2 dephasing did not reduce success: %g >= %g",
			decohered.SuccessRate, base.SuccessRate)
	}
	// Expected extra factor: exp(-idle/T2) with idle = 1Q gate time.
	want := base.SuccessRate * math.Exp(-withT2.Params.OneQubitTime/withT2.Params.T2)
	if math.Abs(decohered.SuccessRate-want) > 1e-12 {
		t.Errorf("T2 factor: got %g, want %g", decohered.SuccessRate, want)
	}
	// T2 = 0 (the default) must be a no-op.
	if DefaultOptions().Params.T2 != 0 {
		t.Error("default T2 should be 0 (disabled), matching the paper")
	}
}
