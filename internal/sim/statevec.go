// Package sim contains the two simulators behind the paper's evaluation:
// an analytical device simulator (execution time + Eq. 4 success rate over
// a compiled schedule) and a dense state-vector simulator used to verify
// that compiled schedules preserve the source circuit's semantics.
package sim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"ssync/internal/circuit"
)

// MaxStateQubits bounds the dense simulator (2^22 amplitudes ≈ 64 MiB).
const MaxStateQubits = 22

// State is a dense n-qubit state vector. Qubit 0 is the least significant
// bit of the amplitude index.
type State struct {
	n   int
	amp []complex128

	// workers is this state's gate-application budget: 0 uses the
	// process default (see SetDefaultWorkers), 1 forces serial, n > 1
	// forces n-way parallel application. Set via SetWorkers.
	workers int
}

// NewState returns |0...0> over n qubits.
func NewState(n int) (*State, error) {
	if n < 1 || n > MaxStateQubits {
		return nil, fmt.Errorf("sim: state size %d out of range [1,%d]", n, MaxStateQubits)
	}
	s := &State{n: n, amp: make([]complex128, 1<<uint(n))}
	s.amp[0] = 1
	return s, nil
}

// NumQubits returns the qubit count.
func (s *State) NumQubits() int { return s.n }

// Amplitude returns amplitude i.
func (s *State) Amplitude(i int) complex128 { return s.amp[i] }

// Clone deep-copies the state (including its worker budget).
func (s *State) Clone() *State {
	return &State{n: s.n, amp: append([]complex128(nil), s.amp...), workers: s.workers}
}

// copyFrom overwrites this state's amplitudes with src's, reusing the
// existing backing array when it is large enough.
func (s *State) copyFrom(src *State) {
	s.n = src.n
	if cap(s.amp) >= len(src.amp) {
		s.amp = s.amp[:len(src.amp)]
	} else {
		s.amp = make([]complex128, len(src.amp))
	}
	copy(s.amp, src.amp)
}

// apply1 applies the 2×2 matrix m to qubit q.
func (s *State) apply1(m [4]complex128, q int) {
	if w := s.effectiveWorkers(); w > 1 {
		cParallelApplies.Add(1)
		j := jobPool.Get().(*applyJob)
		j.kind, j.m1, j.b1 = kind1q, m, 1<<uint(q)
		s.runParallel(j, w)
		return
	}
	cSerialApplies.Add(1)
	s.apply1Range(m, 1<<uint(q), 0, len(s.amp))
}

// apply1Range applies m to qubit bit `bit` over amplitude indices
// [lo, hi). Indices with the bit set are skipped, so any partition of
// the index space computes exactly the serial result.
func (s *State) apply1Range(m [4]complex128, bit, lo, hi int) {
	for i := lo; i < hi; i++ {
		if i&bit != 0 {
			continue
		}
		j := i | bit
		a0, a1 := s.amp[i], s.amp[j]
		s.amp[i] = m[0]*a0 + m[1]*a1
		s.amp[j] = m[2]*a0 + m[3]*a1
	}
}

// apply2 applies the 4×4 matrix m to qubits (a, b); the row/column index
// is bitA*2 + bitB.
func (s *State) apply2(m [16]complex128, a, b int) {
	if w := s.effectiveWorkers(); w > 1 {
		cParallelApplies.Add(1)
		j := jobPool.Get().(*applyJob)
		j.kind, j.m2, j.b1, j.b2 = kind2q, m, a, b
		s.runParallel(j, w)
		return
	}
	cSerialApplies.Add(1)
	s.apply2Range(m, a, b, 0, len(s.amp))
}

// apply2Range applies m to qubits (a, b) over amplitude indices [lo, hi).
func (s *State) apply2Range(m [16]complex128, a, b, lo, hi int) {
	bitA, bitB := 1<<uint(a), 1<<uint(b)
	for i := lo; i < hi; i++ {
		if i&bitA != 0 || i&bitB != 0 {
			continue
		}
		i00 := i
		i01 := i | bitB
		i10 := i | bitA
		i11 := i | bitA | bitB
		v := [4]complex128{s.amp[i00], s.amp[i01], s.amp[i10], s.amp[i11]}
		for r := 0; r < 4; r++ {
			sum := complex(0, 0)
			for c := 0; c < 4; c++ {
				sum += m[r*4+c] * v[c]
			}
			switch r {
			case 0:
				s.amp[i00] = sum
			case 1:
				s.amp[i01] = sum
			case 2:
				s.amp[i10] = sum
			case 3:
				s.amp[i11] = sum
			}
		}
	}
}

func mat1(name string, params []float64) ([4]complex128, error) {
	i := complex(0, 1)
	inv2 := complex(1/math.Sqrt2, 0)
	switch name {
	case "id":
		return [4]complex128{1, 0, 0, 1}, nil
	case "x":
		return [4]complex128{0, 1, 1, 0}, nil
	case "y":
		return [4]complex128{0, -i, i, 0}, nil
	case "z":
		return [4]complex128{1, 0, 0, -1}, nil
	case "h":
		return [4]complex128{inv2, inv2, inv2, -inv2}, nil
	case "s":
		return [4]complex128{1, 0, 0, i}, nil
	case "sdg":
		return [4]complex128{1, 0, 0, -i}, nil
	case "t":
		return [4]complex128{1, 0, 0, cmplx.Exp(i * math.Pi / 4)}, nil
	case "tdg":
		return [4]complex128{1, 0, 0, cmplx.Exp(-i * math.Pi / 4)}, nil
	case "sx":
		return [4]complex128{
			(1 + i) / 2, (1 - i) / 2,
			(1 - i) / 2, (1 + i) / 2,
		}, nil
	case "sxdg":
		return [4]complex128{
			(1 - i) / 2, (1 + i) / 2,
			(1 + i) / 2, (1 - i) / 2,
		}, nil
	case "rx":
		th := params[0] / 2
		c, s := complex(math.Cos(th), 0), complex(math.Sin(th), 0)
		return [4]complex128{c, -i * s, -i * s, c}, nil
	case "ry":
		th := params[0] / 2
		c, s := complex(math.Cos(th), 0), complex(math.Sin(th), 0)
		return [4]complex128{c, -s, s, c}, nil
	case "rz":
		th := params[0] / 2
		return [4]complex128{cmplx.Exp(-i * complex(th, 0)), 0, 0, cmplx.Exp(i * complex(th, 0))}, nil
	case "u1", "p":
		return [4]complex128{1, 0, 0, cmplx.Exp(i * complex(params[0], 0))}, nil
	case "u2":
		phi, lam := params[0], params[1]
		return u3mat(math.Pi/2, phi, lam), nil
	case "u3", "u":
		return u3mat(params[0], params[1], params[2]), nil
	}
	return [4]complex128{}, fmt.Errorf("sim: no matrix for 1q gate %q", name)
}

func u3mat(theta, phi, lam float64) [4]complex128 {
	i := complex(0, 1)
	c, s := complex(math.Cos(theta/2), 0), complex(math.Sin(theta/2), 0)
	return [4]complex128{
		c, -cmplx.Exp(i*complex(lam, 0)) * s,
		cmplx.Exp(i*complex(phi, 0)) * s, cmplx.Exp(i*complex(phi+lam, 0)) * c,
	}
}

// controlled builds the 4×4 controlled version of a 2×2 matrix (control is
// the first qubit / high bit).
func controlled(u [4]complex128) [16]complex128 {
	return [16]complex128{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, u[0], u[1],
		0, 0, u[2], u[3],
	}
}

func mat2(name string, params []float64) ([16]complex128, error) {
	i := complex(0, 1)
	switch name {
	case "cx":
		return controlled([4]complex128{0, 1, 1, 0}), nil
	case "cz":
		return controlled([4]complex128{1, 0, 0, -1}), nil
	case "cy":
		return controlled([4]complex128{0, -i, i, 0}), nil
	case "ch":
		inv2 := complex(1/math.Sqrt2, 0)
		return controlled([4]complex128{inv2, inv2, inv2, -inv2}), nil
	case "swap":
		return [16]complex128{
			1, 0, 0, 0,
			0, 0, 1, 0,
			0, 1, 0, 0,
			0, 0, 0, 1,
		}, nil
	case "cp", "cu1":
		return controlled([4]complex128{1, 0, 0, cmplx.Exp(i * complex(params[0], 0))}), nil
	case "crx", "cry", "crz":
		u, err := mat1(name[1:], params)
		if err != nil {
			return [16]complex128{}, err
		}
		return controlled(u), nil
	case "rzz":
		th := complex(params[0]/2, 0)
		return [16]complex128{
			cmplx.Exp(-i * th), 0, 0, 0,
			0, cmplx.Exp(i * th), 0, 0,
			0, 0, cmplx.Exp(i * th), 0,
			0, 0, 0, cmplx.Exp(-i * th),
		}, nil
	case "rxx", "ms":
		th := params[0] / 2
		c, s := complex(math.Cos(th), 0), complex(math.Sin(th), 0)
		return [16]complex128{
			c, 0, 0, -i * s,
			0, c, -i * s, 0,
			0, -i * s, c, 0,
			-i * s, 0, 0, c,
		}, nil
	case "ryy":
		th := params[0] / 2
		c, s := complex(math.Cos(th), 0), complex(math.Sin(th), 0)
		return [16]complex128{
			c, 0, 0, i * s,
			0, c, -i * s, 0,
			0, -i * s, c, 0,
			i * s, 0, 0, c,
		}, nil
	}
	return [16]complex128{}, fmt.Errorf("sim: no matrix for 2q gate %q", name)
}

// Apply applies one gate. Barriers are ignored; measure/reset are
// rejected (the verifier works on unitary prefixes).
func (s *State) Apply(g circuit.Gate) error {
	switch {
	case g.Cond != nil:
		// Whether the gate fires depends on a run-time measurement
		// outcome; there is no single unitary to apply.
		return fmt.Errorf("sim: classically-controlled gate %s has no unitary", g)
	case g.Name == "barrier":
		return nil
	case g.Name == "measure" || g.Name == "reset":
		return fmt.Errorf("sim: non-unitary gate %q in state-vector run", g.Name)
	case len(g.Qubits) == 1:
		m, err := mat1(g.Name, g.Params)
		if err != nil {
			return err
		}
		s.apply1(m, g.Qubits[0])
		return nil
	case len(g.Qubits) == 2:
		m, err := mat2(g.Name, g.Params)
		if err != nil {
			return err
		}
		s.apply2(m, g.Qubits[0], g.Qubits[1])
		return nil
	case g.Name == "ccx":
		s.applyCCX(g.Qubits[0], g.Qubits[1], g.Qubits[2])
		return nil
	case g.Name == "cswap":
		s.applyCSwap(g.Qubits[0], g.Qubits[1], g.Qubits[2])
		return nil
	}
	return fmt.Errorf("sim: unsupported gate %s", g)
}

// applyCCX flips the target bit on amplitudes with both controls set.
func (s *State) applyCCX(c1, c2, t int) {
	if w := s.effectiveWorkers(); w > 1 {
		cParallelApplies.Add(1)
		j := jobPool.Get().(*applyJob)
		j.kind, j.b1, j.b2, j.b3 = kindCCX, c1, c2, t
		s.runParallel(j, w)
		return
	}
	cSerialApplies.Add(1)
	s.ccxRange(c1, c2, t, 0, len(s.amp))
}

// ccxRange is applyCCX over amplitude indices [lo, hi). Each swap is
// owned by the index with the target bit clear, so partitions are safe.
func (s *State) ccxRange(c1, c2, t, lo, hi int) {
	b1, b2, bt := 1<<uint(c1), 1<<uint(c2), 1<<uint(t)
	for i := lo; i < hi; i++ {
		if i&b1 != 0 && i&b2 != 0 && i&bt == 0 {
			j := i | bt
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

// applyCSwap exchanges bits a and b on amplitudes with the control set.
func (s *State) applyCSwap(c, a, b int) {
	if w := s.effectiveWorkers(); w > 1 {
		cParallelApplies.Add(1)
		j := jobPool.Get().(*applyJob)
		j.kind, j.b1, j.b2, j.b3 = kindCSwap, c, a, b
		s.runParallel(j, w)
		return
	}
	cSerialApplies.Add(1)
	s.cswapRange(c, a, b, 0, len(s.amp))
}

// cswapRange is applyCSwap over amplitude indices [lo, hi). The swap is
// owned by the index with bit a set and bit b clear.
func (s *State) cswapRange(c, a, b, lo, hi int) {
	bc, ba, bb := 1<<uint(c), 1<<uint(a), 1<<uint(b)
	for i := lo; i < hi; i++ {
		if i&bc != 0 && i&ba != 0 && i&bb == 0 {
			j := i&^ba | bb
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

// ApplyCircuit runs every gate of c.
func (s *State) ApplyCircuit(c *circuit.Circuit) error {
	if c.NumQubits != s.n {
		return fmt.Errorf("sim: circuit has %d qubits, state has %d", c.NumQubits, s.n)
	}
	for _, g := range c.Gates {
		if err := s.Apply(g); err != nil {
			return err
		}
	}
	return nil
}

// Overlap returns |<a|b>|², 1 when the states agree up to global phase.
func Overlap(a, b *State) float64 {
	if a.n != b.n {
		return 0
	}
	sum := complex(0, 0)
	for i := range a.amp {
		sum += cmplx.Conj(a.amp[i]) * b.amp[i]
	}
	return real(sum)*real(sum) + imag(sum)*imag(sum)
}

// RandomProductState prepares ⨂ u3(θ,φ,λ)|0> with angles drawn from rng —
// a fixed-seed “witness” input that distinguishes almost all unitaries.
func RandomProductState(n int, rng *rand.Rand) (*State, error) {
	s, err := NewState(n)
	if err != nil {
		return nil, err
	}
	for q := 0; q < n; q++ {
		g := circuit.New("u3", []int{q},
			rng.Float64()*math.Pi, rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi)
		if err := s.Apply(g); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Probability returns |amp[basis]|², the chance of measuring the given
// computational basis state.
func (s *State) Probability(basis int) float64 {
	a := s.amp[basis]
	return real(a)*real(a) + imag(a)*imag(a)
}
