package sim

import (
	"fmt"
	"math/rand"

	"ssync/internal/circuit"
	"ssync/internal/schedule"
)

// VerifySchedule proves a compiled schedule preserves the source circuit's
// semantics: replaying the schedule's logical gate stream (shuttles,
// shifts and inserted SWAPs relocate ions but leave logical states
// untouched) on a random product input must reproduce the state the source
// circuit produces, up to global phase. Works for unitary circuits of at
// most MaxStateQubits qubits.
func VerifySchedule(src *circuit.Circuit, sched *schedule.Schedule, seed int64) error {
	if src.NumQubits != sched.NumQubits {
		return fmt.Errorf("sim: circuit has %d qubits, schedule %d", src.NumQubits, sched.NumQubits)
	}
	if src.NumQubits > MaxStateQubits {
		return fmt.Errorf("sim: %d qubits exceeds the dense simulator limit %d", src.NumQubits, MaxStateQubits)
	}
	rng := rand.New(rand.NewSource(seed))
	want, err := RandomProductState(src.NumQubits, rng)
	if err != nil {
		return err
	}
	got := want.Clone()

	basis := src.DecomposeToBasis()
	for _, g := range basis.Gates {
		if g.Name == "measure" || g.Name == "reset" {
			return fmt.Errorf("sim: VerifySchedule requires a unitary circuit (found %q)", g.Name)
		}
		if err := want.Apply(g); err != nil {
			return err
		}
	}
	for _, op := range sched.LogicalGates() {
		switch op.Kind {
		case schedule.Measure:
			return fmt.Errorf("sim: VerifySchedule requires a unitary schedule (found measure)")
		case schedule.Barrier:
			continue
		}
		g := circuit.Gate{Name: op.Name, Qubits: op.Qubits, Params: op.Params}
		if err := got.Apply(g); err != nil {
			return err
		}
	}
	if ov := Overlap(want, got); ov < 1-1e-7 {
		return fmt.Errorf("sim: schedule diverges from source circuit (overlap %.9f)", ov)
	}
	return nil
}
