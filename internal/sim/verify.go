package sim

import (
	"fmt"

	"ssync/internal/circuit"
	"ssync/internal/schedule"
)

// VerifySchedule proves a compiled schedule preserves the source circuit's
// semantics: replaying the schedule's logical gate stream (shuttles,
// shifts and inserted SWAPs relocate ions but leave logical states
// untouched) on a random product input must reproduce the state the source
// circuit produces, up to global phase. Works for unitary circuits of at
// most MaxStateQubits qubits.
//
// The reference simulation is rebuilt on every call; callers verifying
// many schedules against one source circuit (portfolios, route variants)
// should go through a RefCache — e.g. SharedRefs.Verify — which simulates
// the reference once, or hold a NewReference and replay against it.
func VerifySchedule(src *circuit.Circuit, sched *schedule.Schedule, seed int64) error {
	if src.NumQubits != sched.NumQubits {
		return fmt.Errorf("sim: circuit has %d qubits, schedule %d", src.NumQubits, sched.NumQubits)
	}
	ref, err := NewReference(src, seed)
	if err != nil {
		return err
	}
	return ref.VerifySchedule(sched)
}
