package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"ssync/internal/obs"
)

// Blob layout: a fixed magic that versions the on-disk format, the
// payload length, the payload's SHA-256, then the payload. Get rejects
// anything that fails any of the three checks — a truncated write, a
// flipped bit, or a format bump all read back as clean misses, never as
// wrong artifacts.
const (
	blobMagic  = "ssync-blob-v1\n"
	blobSuffix = ".blob"
	headerLen  = len(blobMagic) + 8 + sha256.Size
)

// DiskStats is a point-in-time snapshot of a disk tier's counters.
type DiskStats struct {
	Hits      uint64
	Misses    uint64
	Puts      uint64
	Evictions uint64
	// Corrupt counts blobs dropped because they failed validation (bad
	// magic, short read, checksum mismatch) or vanished underneath the
	// index; each is served as a miss.
	Corrupt uint64
	// Rejected counts puts skipped because a single blob exceeded the
	// size cap on its own.
	Rejected uint64
	Entries  int
	// Bytes is the current on-disk footprint; MaxBytes the configured cap
	// (0 = unbounded). In shared mode both describe the local view —
	// blobs this process has written or served — which lags the
	// directory's combined footprint between eviction rescans.
	Bytes    int64
	MaxBytes int64
	// Shared reports that the tier was opened with OpenDiskShared and
	// coordinates with other processes over the same directory.
	Shared bool
}

// diskEntry is the in-memory index record for one blob.
type diskEntry struct {
	key  Key
	size int64
	last time.Time // last access; eviction removes the oldest first
	// gen counts Put refreshes of this entry; Get captures it before
	// reading the file outside the lock, so a corrupt read can tell "the
	// blob I read is bad" from "a concurrent Put replaced the blob while
	// I was reading" and never deletes a freshly written replacement.
	gen uint64
}

// Disk is the persistent tier: one content-addressed blob file per key
// under a flat directory, written crash-safely (temp file + fsync +
// rename, so a crash mid-write leaves either the old blob or a stray
// temp file that the next Open removes — never a half-written blob under
// a valid name). The tier is size-capped with LRU-by-access eviction
// (O(1): the index keeps a recency list, seeded from file mtimes on
// Open); access times are mirrored onto file mtimes so recency survives
// restarts. Safe for concurrent use within one process. Multiple Disks
// over one directory — N replica daemons mounting one cache dir —
// require shared mode (OpenDiskShared), which coordinates eviction and
// reads across processes with advisory file locks; a plain OpenDisk
// tier assumes it owns the index, so another daemon's evictions would
// read as corrupt-blob misses and the byte caps would drift.
type Disk struct {
	// hooks receives per-operation latency observations; nil means not
	// instrumented. Set once via SetHooks before concurrent use.
	hooks obs.Hooks
	// shared marks a tier opened with OpenDiskShared: reads take shared
	// flocks, index misses probe the directory, and eviction runs under
	// the cross-process lease instead of trusting the local index.
	shared bool
	mu     sync.Mutex
	dir    string
	max    int64 // <= 0: unbounded
	// size is the summed byte footprint of ll's entries; ll orders blobs
	// most-recently-accessed first, index addresses its elements by key.
	size      int64
	ll        *list.List
	index     map[Key]*list.Element
	hits      uint64
	misses    uint64
	puts      uint64
	evictions uint64
	corrupt   uint64
	rejected  uint64
}

// OpenDisk opens (creating if needed) a disk tier rooted at dir, capped
// at maxBytes total blob bytes (<= 0 means unbounded). Stray temp files
// from interrupted writes are removed; existing valid-named blobs are
// indexed by their file mtime, so the LRU order persists across
// restarts. Foreign files in the directory are left untouched and do not
// count against the cap.
func OpenDisk(dir string, maxBytes int64) (*Disk, error) {
	return openDisk(dir, maxBytes, false)
}

func openDisk(dir string, maxBytes int64, shared bool) (*Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: disk tier needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: disk tier: %w", err)
	}
	d := &Disk{dir: dir, max: maxBytes, shared: shared, ll: list.New(), index: make(map[Key]*list.Element)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: disk tier: %w", err)
	}
	var found []*diskEntry
	for _, e := range entries {
		name := e.Name()
		if isTempName(name) {
			info, _ := e.Info()
			d.removeStrayTemp(name, info) // interrupted write (kept briefly in shared mode)
			continue
		}
		key, ok := keyFromName(name)
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, &diskEntry{key: key, size: info.Size(), last: info.ModTime()})
	}
	// Seed the recency list oldest-first so the most recently accessed
	// blobs end up at the front, exactly as if the accesses had happened
	// in this process.
	sort.Slice(found, func(i, j int) bool { return found[i].last.Before(found[j].last) })
	for _, e := range found {
		d.index[e.key] = d.ll.PushFront(e)
		d.size += e.size
	}
	if shared {
		d.sharedEvict()
	} else {
		d.mu.Lock()
		d.evictLocked()
		d.mu.Unlock()
	}
	return d, nil
}

// Dir returns the tier's root directory.
func (d *Disk) Dir() string { return d.dir }

// SetHooks attaches the instrumentation hooks Get and Put report blob
// I/O latency to. Call once, right after OpenDisk and before the tier
// is shared between goroutines.
func (d *Disk) SetHooks(h obs.Hooks) { d.hooks = h }

// keyFromName parses "<64 hex chars>.blob" back into a key.
func keyFromName(name string) (Key, bool) {
	var k Key
	hexPart, ok := strings.CutSuffix(name, blobSuffix)
	if !ok {
		return k, false
	}
	raw, err := hex.DecodeString(hexPart)
	if err != nil || len(raw) != len(k) {
		return k, false
	}
	copy(k[:], raw)
	return k, true
}

func (d *Disk) path(k Key) string {
	return filepath.Join(d.dir, k.String()+blobSuffix)
}

// Get returns the payload stored under key. Corrupt or vanished blobs
// are dropped and reported as misses — the caller recomputes and Put
// heals the entry. The mutex guards only the index; the file read and
// checksum run outside it, so concurrent lookups of different keys do
// not serialize behind each other's I/O.
func (d *Disk) Get(k Key) ([]byte, bool) {
	if d.hooks == nil {
		return d.get(k)
	}
	start := time.Now()
	payload, ok := d.get(k)
	d.hooks.DiskOp("get", ok, time.Since(start))
	return payload, ok
}

func (d *Disk) get(k Key) ([]byte, bool) {
	d.mu.Lock()
	el, ok := d.index[k]
	if !ok {
		if d.shared {
			// Another replica may have written this key; probe the
			// directory (getProbe releases the mutex).
			return d.getProbe(k)
		}
		d.misses++
		d.mu.Unlock()
		return nil, false
	}
	gen := el.Value.(*diskEntry).gen
	d.mu.Unlock()

	// Shared mode reads under a shared flock so a concurrent evictor in
	// another process never unlinks a blob mid-read.
	payload, err := readBlob(d.path(k), d.shared)

	d.mu.Lock()
	defer d.mu.Unlock()
	el, ok = d.index[k]
	if !ok {
		// Evicted while we were reading; whatever we read no longer
		// represents the tier.
		d.misses++
		return nil, false
	}
	e := el.Value.(*diskEntry)
	if err != nil {
		if d.shared && errors.Is(err, fs.ErrNotExist) {
			// Another replica evicted the blob under our index: a clean
			// cross-process miss, not corruption.
			d.size -= e.size
			d.ll.Remove(el)
			delete(d.index, k)
			d.misses++
			return nil, false
		}
		if e.gen == gen {
			// The blob we read is the one the index describes, and it is
			// bad: drop it. (A differing gen means a concurrent Put just
			// replaced it — leave the fresh blob alone.) In shared mode
			// the unlink additionally requires the exclusive lock and a
			// stable mtime, so a replacement racing in from another
			// process survives.
			if d.shared {
				removeBlobIfUnused(d.path(k), time.Time{})
			} else {
				os.Remove(d.path(k))
			}
			d.size -= e.size
			d.ll.Remove(el)
			delete(d.index, k)
			d.corrupt++
		}
		d.misses++
		return nil, false
	}
	now := time.Now()
	e.last = now
	d.ll.MoveToFront(el)
	os.Chtimes(d.path(k), now, now) // best effort: recency survives restart
	d.hits++
	return payload, true
}

// Put stores payload under key crash-safely and evicts least-recently
// accessed blobs while the tier is over its cap. Storing an existing key
// overwrites atomically (format/version bumps self-heal this way). The
// write — fsync included — runs outside the mutex: temp-file + rename is
// already safe between concurrent writers, so only the index update is
// serialized and a slow fsync never stalls unrelated lookups. (A crash
// between rename and index update merely leaves a valid blob the next
// Open indexes.)
func (d *Disk) Put(k Key, payload []byte) error {
	if d.hooks == nil {
		return d.put(k, payload)
	}
	start := time.Now()
	err := d.put(k, payload)
	d.hooks.DiskOp("put", err == nil, time.Since(start))
	return err
}

func (d *Disk) put(k Key, payload []byte) error {
	blobSize := int64(headerLen + len(payload))
	if d.max > 0 && blobSize > d.max {
		d.mu.Lock()
		d.rejected++
		d.mu.Unlock()
		return nil // cannot fit even alone; not an error, just uncacheable
	}
	if err := writeBlob(d.dir, d.path(k), payload); err != nil {
		return err
	}
	d.mu.Lock()
	if el, ok := d.index[k]; ok {
		e := el.Value.(*diskEntry)
		d.size += blobSize - e.size
		e.size, e.last = blobSize, time.Now()
		e.gen++
		d.ll.MoveToFront(el)
	} else {
		d.index[k] = d.ll.PushFront(&diskEntry{key: k, size: blobSize, last: time.Now()})
		d.size += blobSize
	}
	d.puts++
	if !d.shared {
		d.evictLocked()
		d.mu.Unlock()
		return nil
	}
	// Shared mode evicts against the directory's combined footprint, not
	// the local index: run when the local view is over cap, and
	// periodically regardless — other replicas' writes are invisible to
	// the local byte count until a rescan.
	evict := d.max > 0 && (d.size > d.max || d.puts%sharedEvictEvery == 0)
	d.mu.Unlock()
	if evict {
		d.sharedEvict()
	}
	return nil
}

// evictLocked removes least-recently-accessed blobs (the list back)
// until the tier fits its cap.
func (d *Disk) evictLocked() {
	for d.max > 0 && d.size > d.max && d.ll.Len() > 0 {
		oldest := d.ll.Back()
		e := oldest.Value.(*diskEntry)
		os.Remove(d.path(e.key))
		d.size -= e.size
		d.ll.Remove(oldest)
		delete(d.index, e.key)
		d.evictions++
	}
}

// Len returns the current blob count.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.index)
}

// Stats snapshots the tier counters.
func (d *Disk) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DiskStats{
		Hits: d.hits, Misses: d.misses, Puts: d.puts,
		Evictions: d.evictions, Corrupt: d.corrupt, Rejected: d.rejected,
		Entries: len(d.index), Bytes: d.size, MaxBytes: d.max,
		Shared: d.shared,
	}
}

// writeBlob writes magic + length + checksum + payload to a temp file in
// dir, fsyncs, and renames onto path — the atomic publish that makes a
// crash leave either the previous blob or nothing.
func writeBlob(dir, path string, payload []byte) error {
	tmp, err := os.CreateTemp(dir, "put-*.tmp")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	header := make([]byte, headerLen)
	n := copy(header, blobMagic)
	binary.BigEndian.PutUint64(header[n:], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(header[n+8:], sum[:])
	if _, err := tmp.Write(header); err != nil {
		return err
	}
	if _, err := tmp.Write(payload); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		tmp = nil
		return err
	}
	tmp = nil
	return nil
}

// readBlob reads and validates one blob, returning its payload. With
// lock set (shared mode) the read holds a shared advisory flock, so a
// cross-process evictor's exclusive lock cannot unlink the blob
// mid-read; an unlink racing in before our lock is harmless — the open
// file descriptor keeps the inode readable.
func readBlob(path string, lock bool) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if lock {
		if err := flockShared(f); err != nil {
			return nil, err
		}
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	if len(data) < headerLen || string(data[:len(blobMagic)]) != blobMagic {
		return nil, fmt.Errorf("store: blob %s: bad header", filepath.Base(path))
	}
	want := binary.BigEndian.Uint64(data[len(blobMagic):])
	payload := data[headerLen:]
	if uint64(len(payload)) != want {
		return nil, fmt.Errorf("store: blob %s: truncated (%d of %d payload bytes)",
			filepath.Base(path), len(payload), want)
	}
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(data[len(blobMagic)+8:headerLen]) {
		return nil, fmt.Errorf("store: blob %s: checksum mismatch", filepath.Base(path))
	}
	return payload, nil
}
