//go:build !unix

package store

import "os"

// Non-unix fallbacks: no advisory locking. The locks are advisory
// coordination between cooperating replicas, not a correctness
// requirement for single-process use — blob reads stay miss-not-crash
// either way — so platforms without flock degrade to the pre-shared
// behaviour (one live process per cache directory).

func flockShared(*os.File) error { return nil }

func flockExclusiveNB(*os.File) bool { return true }

func funlock(*os.File) {}
