//go:build unix

package store

import (
	"os"
	"syscall"
)

// Advisory cross-process file locking for the shared disk tier
// (OpenDiskShared): readers hold a shared flock on a blob while reading
// it, the evictor takes exclusive non-blocking flocks — on the lease
// file to serialise eviction across replicas, and on each blob before
// unlinking it — so eviction can never delete a blob another process is
// mid-read on. flock is per open description, so two Disk handles in one
// process coordinate exactly like two processes do.

// flockShared takes a shared advisory lock on f, blocking until granted.
// Blocking is safe here: the only exclusive holders (evictor, corrupt
// cleanup) take the lock non-blocking and release it immediately after
// the unlink, and an unlink under our feet still leaves the open inode
// readable.
func flockShared(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_SH)
}

// flockExclusiveNB tries to take an exclusive advisory lock on f without
// blocking; false means another handle holds the lock (a reader mid-read
// or another evictor) and the caller must leave the file alone.
func flockExclusiveNB(f *os.File) bool {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB) == nil
}

// funlock releases an advisory lock early (Close releases it too; the
// lease holder unlocks explicitly so contenders proceed the moment
// eviction finishes, not when the deferred Close runs).
func funlock(f *os.File) {
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
