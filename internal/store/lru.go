package store

import (
	"container/list"
	"sync"
)

// LRU is a content-addressed in-memory map from keys to values — the
// memory front of a Tiered store, and usable standalone (the engine's
// result and metrics caches are this type under an alias). Pointer-typed
// values are shared between all readers and must be treated as
// read-only. Safe for concurrent use.
type LRU[V any] struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recently used
	items     map[Key]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type lruEntry[V any] struct {
	key Key
	val V
}

// NewLRU returns an LRU cache holding at most max values (min 1).
func NewLRU[V any](max int) *LRU[V] {
	if max < 1 {
		max = 1
	}
	return &LRU[V]{max: max, ll: list.New(), items: make(map[Key]*list.Element)}
}

// Get returns the cached value for key, marking it most recently used.
func (c *LRU[V]) Get(key Key) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// Put stores a value under key, evicting the least recently used entry
// when over capacity. Storing an existing key refreshes its value and
// recency.
func (c *LRU[V]) Put(key Key, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[V]).key)
		c.evictions++
	}
}

// Len returns the current entry count.
func (c *LRU[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the cache counters.
func (c *LRU[V]) Stats() LRUStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return LRUStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: c.ll.Len(), Capacity: c.max,
	}
}
