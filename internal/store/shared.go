package store

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Shared mode lets N processes — ssyncd replicas behind the cluster
// router — mount one cache directory as a common disk tier. The
// crash-safe write path (temp file + fsync + rename) already makes
// concurrent writers of one key resolve to a single winner; shared mode
// adds the three cross-process guarantees the single-owner tier lacks:
//
//   - Visibility: a Get that misses the local in-memory index probes the
//     directory directly, so a blob written by replica A is served — and
//     adopted into the local index — by replica B.
//   - Safe eviction: the byte cap is enforced against the directory's
//     true combined footprint (local indexes only see their own puts),
//     serialised across replicas by an exclusive flock on a lease file;
//     each unlink first takes an exclusive non-blocking flock on the
//     blob, so a blob another process holds a shared read lock on is
//     never deleted mid-read.
//   - Clean remote misses: a blob that vanishes under the local index
//     because another replica evicted it reads as a plain miss, not a
//     corrupt-blob drop.
const (
	// leaseName is the eviction lease: whichever replica holds its
	// exclusive flock runs eviction; contenders skip (the work is already
	// being done).
	leaseName = "evict.lease"
	// sharedTmpGrace protects another replica's in-flight temp file from
	// Open's stray-temp cleanup; genuinely orphaned temps (a crashed
	// writer) age past it and are removed by the next Open.
	sharedTmpGrace = 10 * time.Minute
	// sharedEvictEvery forces a footprint rescan every N local puts even
	// while the local byte view is under cap, bounding how far the
	// combined footprint can drift when every replica individually
	// believes it fits.
	sharedEvictEvery = 16
)

// OpenDiskShared opens a disk tier that may be safely mounted by
// several processes at once (N ssyncd replicas over one -cache-dir).
// Semantics match OpenDisk, with cross-process sharing as documented on
// the shared-mode constants; maxBytes caps the directory's combined
// footprint across all mounting processes (<= 0 means unbounded).
func OpenDiskShared(dir string, maxBytes int64) (*Disk, error) {
	return openDisk(dir, maxBytes, true)
}

// getProbe handles a shared-mode lookup whose key the local index does
// not know: another replica may have written the blob, so read the file
// directly (under a shared lock, so a concurrent evictor cannot unlink
// it mid-read) and adopt it into the local index on success. Called
// with d.mu held; returns with it released.
func (d *Disk) getProbe(k Key) ([]byte, bool) {
	d.mu.Unlock()
	payload, err := readBlob(d.path(k), true)
	d.mu.Lock()
	defer d.mu.Unlock()
	if err != nil {
		// Not present (or not valid yet — a cross-process miss either
		// way). A corrupt blob is left for the writer's overwrite or the
		// evictor; counting it corrupt here would double-count across
		// replicas.
		d.misses++
		return nil, false
	}
	if _, ok := d.index[k]; !ok {
		size := int64(headerLen + len(payload))
		d.index[k] = d.ll.PushFront(&diskEntry{key: k, size: size, last: time.Now()})
		d.size += size
	}
	now := time.Now()
	os.Chtimes(d.path(k), now, now) // mtime is the cross-process recency signal
	d.hits++
	return payload, true
}

// removeBlobIfUnused unlinks path only if an exclusive lock is
// available — i.e. no other process (or handle) is mid-read on it — and
// its mtime is not newer than notAfter (a writer may have just replaced
// the blob with a fresh one; deleting that would evict the hottest data
// first). Returns whether the unlink happened.
func removeBlobIfUnused(path string, notAfter time.Time) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	if !flockExclusiveNB(f) {
		return false
	}
	if !notAfter.IsZero() {
		if info, err := f.Stat(); err != nil || info.ModTime().After(notAfter) {
			return false
		}
	}
	return os.Remove(path) == nil
}

// sharedEvict enforces the byte cap against the directory's combined
// footprint. One process at a time holds the eviction lease; the rest
// skip — the holder is already doing the work, and the next over-cap
// put retries. The holder rescans the directory (the only view that
// includes every replica's writes), then unlinks blobs oldest-mtime
// first — mtime doubles as cross-process access recency, maintained by
// Get — skipping any blob a reader holds locked, until the footprint
// fits.
func (d *Disk) sharedEvict() {
	if d.max <= 0 {
		return
	}
	lease, err := os.OpenFile(filepath.Join(d.dir, leaseName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return
	}
	defer lease.Close()
	if !flockExclusiveNB(lease) {
		return
	}
	defer funlock(lease)

	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	scanTime := time.Now()
	type blobInfo struct {
		key  Key
		size int64
		mod  time.Time
	}
	var blobs []blobInfo
	var total int64
	for _, e := range entries {
		key, ok := keyFromName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		blobs = append(blobs, blobInfo{key: key, size: info.Size(), mod: info.ModTime()})
		total += info.Size()
	}
	if total <= d.max {
		return
	}
	sort.Slice(blobs, func(i, j int) bool { return blobs[i].mod.Before(blobs[j].mod) })
	var removed []Key
	for _, b := range blobs {
		if total <= d.max {
			break
		}
		if !removeBlobIfUnused(d.path(b.key), scanTime) {
			continue // locked by a reader, vanished, or freshly replaced
		}
		total -= b.size
		removed = append(removed, b.key)
	}
	if len(removed) == 0 {
		return
	}
	d.mu.Lock()
	for _, k := range removed {
		if el, ok := d.index[k]; ok {
			e := el.Value.(*diskEntry)
			d.size -= e.size
			d.ll.Remove(el)
			delete(d.index, k)
		}
		d.evictions++
	}
	d.mu.Unlock()
}

// removeStrayTemp removes an interrupted write's temp file. In shared
// mode a recent temp may be another live replica's in-flight write —
// removing it would make that writer's rename fail — so only temps
// older than the grace period go.
func (d *Disk) removeStrayTemp(name string, info os.FileInfo) {
	if d.shared && (info == nil || time.Since(info.ModTime()) < sharedTmpGrace) {
		return
	}
	os.Remove(filepath.Join(d.dir, name))
}

// isTempName reports whether name is one of writeBlob's temp files.
func isTempName(name string) bool { return strings.HasSuffix(name, ".tmp") }
