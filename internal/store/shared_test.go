package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"
)

// sharedKey derives a deterministic test key from an integer.
func sharedKey(i int) Key {
	var k Key
	for j := range k {
		k[j] = byte(i * (j + 3))
	}
	k[0] = byte(i)
	return k
}

// sharedPayload is a pure function of the key, so any process that wins
// a concurrent Put race stored exactly the bytes every reader expects.
func sharedPayload(k Key) []byte {
	n := 512 + int(k[1])*7
	p := make([]byte, n)
	for i := range p {
		p[i] = k[i%len(k)]
	}
	return p
}

// TestSharedDiskCrossHandleVisibility is the two-handles-one-directory
// contract: a blob written through one shared handle is served through
// another whose in-memory index has never seen the key.
func TestSharedDiskCrossHandleVisibility(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenDiskShared(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenDiskShared(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := sharedKey(1)
	want := sharedPayload(k)
	if err := a.Put(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok := b.Get(k)
	if !ok {
		t.Fatalf("handle B missed a blob handle A wrote")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("handle B read %d bytes, want %d", len(got), len(want))
	}
	if st := b.Stats(); st.Hits != 1 || !st.Shared {
		t.Fatalf("stats = %+v, want 1 hit on a shared tier", st)
	}
}

// TestSharedDiskRemoteEvictionIsCleanMiss: when another handle's
// eviction unlinks a blob under this handle's index, the lookup is a
// plain miss — never a corrupt-blob drop, never an error.
func TestSharedDiskRemoteEvictionIsCleanMiss(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenDiskShared(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := sharedKey(2)
	if err := a.Put(k, sharedPayload(k)); err != nil {
		t.Fatal(err)
	}
	// Simulate a remote eviction: unlink the blob directly.
	if err := os.Remove(filepath.Join(dir, k.String()+blobSuffix)); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Get(k); ok {
		t.Fatal("Get served an unlinked blob")
	}
	st := a.Stats()
	if st.Corrupt != 0 {
		t.Fatalf("remote eviction counted as corrupt: %+v", st)
	}
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	// The index entry is gone: a second lookup is a probe miss, not a
	// repeated unlink attempt.
	if _, ok := a.Get(k); ok {
		t.Fatal("second Get served an unlinked blob")
	}
}

// TestSharedDiskEvictionRespectsCap: shared eviction enforces the cap
// against the directory's combined footprint even though each handle's
// local index saw only its own puts.
func TestSharedDiskEvictionRespectsCap(t *testing.T) {
	dir := t.TempDir()
	const max = 16 << 10
	a, err := OpenDiskShared(dir, max)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenDiskShared(dir, max)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave enough writes from both handles to exceed the cap
	// several times over; each handle alone stays under it between
	// periodic rescans only briefly.
	for i := 0; i < 64; i++ {
		h := a
		if i%2 == 1 {
			h = b
		}
		k := sharedKey(100 + i)
		if err := h.Put(k, sharedPayload(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Force a final rescan from either handle.
	a.sharedEvict()
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if _, ok := keyFromName(e.Name()); !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	if total > max {
		t.Fatalf("combined footprint %d exceeds cap %d after shared eviction", total, max)
	}
}

// TestSharedDiskCorruptBlobIsMiss: a truncated blob written by a
// crashed or buggy peer reads as a miss through a shared handle.
func TestSharedDiskCorruptBlobIsMiss(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskShared(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := sharedKey(3)
	if err := os.WriteFile(filepath.Join(dir, k.String()+blobSuffix), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(k); ok {
		t.Fatal("Get served a corrupt blob")
	}
	// A valid Put heals the entry.
	if err := d.Put(k, sharedPayload(k)); err != nil {
		t.Fatal(err)
	}
	if got, ok := d.Get(k); !ok || !bytes.Equal(got, sharedPayload(k)) {
		t.Fatal("Put did not heal the corrupt blob")
	}
}

// TestSharedDiskConcurrentSameKeyWriters: concurrent writers of one key
// through different handles resolve to one winner; every subsequent read
// sees a complete, valid blob.
func TestSharedDiskConcurrentSameKeyWriters(t *testing.T) {
	dir := t.TempDir()
	handles := make([]*Disk, 4)
	for i := range handles {
		d, err := OpenDiskShared(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = d
	}
	k := sharedKey(4)
	want := sharedPayload(k)
	var wg sync.WaitGroup
	for _, h := range handles {
		wg.Add(1)
		go func(d *Disk) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := d.Put(k, want); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if got, ok := d.Get(k); ok && !bytes.Equal(got, want) {
					t.Errorf("read a torn blob (%d bytes)", len(got))
					return
				}
			}
		}(h)
	}
	wg.Wait()
	for i, h := range handles {
		if got, ok := h.Get(k); !ok || !bytes.Equal(got, want) {
			t.Fatalf("handle %d: final read failed (ok=%v)", i, ok)
		}
	}
}

// --- Cross-process test -------------------------------------------------
//
// The parent spawns two copies of this test binary running only the
// helper below, each mounting the same directory as a shared tier with a
// small byte cap, hammering an overlapping key space with Put/Get (and
// the evictions the cap forces). The helper validates every successful
// Get against the key-derived payload — a torn or cross-wired blob fails
// the child — and the parent then re-mounts the directory and validates
// every surviving blob. Run under -race in CI, each child process is
// itself race-instrumented.

const (
	sharedProcDirEnv  = "SSYNC_SHARED_DISK_DIR"
	sharedProcSeedEnv = "SSYNC_SHARED_DISK_SEED"
)

// TestSharedDiskCrossProcessHelper is the child-process body; it skips
// unless the parent set the environment up.
func TestSharedDiskCrossProcessHelper(t *testing.T) {
	dir := os.Getenv(sharedProcDirEnv)
	if dir == "" {
		t.Skip("helper for TestSharedDiskCrossProcess; run by the parent test")
	}
	seed, _ := strconv.Atoi(os.Getenv(sharedProcSeedEnv))
	d, err := OpenDiskShared(dir, 64<<10) // small cap: evictions race the traffic
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	deadline := time.Now().Add(3 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		k := sharedKey(200 + rng.Intn(48)) // overlaps with the sibling process
		switch rng.Intn(3) {
		case 0, 1:
			if err := d.Put(k, sharedPayload(k)); err != nil {
				t.Fatalf("iteration %d: put: %v", i, err)
			}
		default:
			if p, ok := d.Get(k); ok && !bytes.Equal(p, sharedPayload(k)) {
				t.Fatalf("iteration %d: read %d bytes for key %s, want %d",
					i, len(p), k.String()[:8], len(sharedPayload(k)))
			}
		}
	}
	if st := d.Stats(); st.Corrupt > 0 {
		// Concurrent writers + evictors must never manufacture corruption:
		// temp+fsync+rename publishes only whole blobs, and unlinks are
		// miss-not-corrupt in shared mode.
		t.Fatalf("shared traffic produced corrupt blobs: %+v", st)
	}
}

func TestSharedDiskCrossProcess(t *testing.T) {
	if os.Getenv(sharedProcDirEnv) != "" {
		t.Skip("already inside a helper process")
	}
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	type child struct {
		cmd *exec.Cmd
		out *bytes.Buffer
	}
	var children []child
	for i := 0; i < 2; i++ {
		out := &bytes.Buffer{}
		cmd := exec.Command(exe, "-test.run", "^TestSharedDiskCrossProcessHelper$", "-test.v")
		cmd.Env = append(os.Environ(),
			sharedProcDirEnv+"="+dir,
			fmt.Sprintf("%s=%d", sharedProcSeedEnv, i+1))
		cmd.Stdout, cmd.Stderr = out, out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		children = append(children, child{cmd, out})
	}
	for i, c := range children {
		if err := c.cmd.Wait(); err != nil {
			t.Errorf("child %d failed: %v\n%s", i, err, c.out.String())
		}
	}
	if t.Failed() {
		return
	}
	// Survivor validation: every blob left on disk decodes cleanly and
	// matches its key-derived payload.
	d, err := OpenDiskShared(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	validated := 0
	for _, e := range entries {
		k, ok := keyFromName(e.Name())
		if !ok {
			continue
		}
		p, ok := d.Get(k)
		if !ok {
			t.Fatalf("surviving blob %s unreadable", e.Name())
		}
		if !bytes.Equal(p, sharedPayload(k)) {
			t.Fatalf("surviving blob %s does not match its key", e.Name())
		}
		validated++
	}
	if validated == 0 {
		t.Fatal("no blobs survived two writer processes; eviction is over-aggressive")
	}
}
