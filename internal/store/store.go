// Package store is the tiered, content-addressed artifact store behind
// the compilation engine's caches: an in-memory LRU front (LRU,
// generalising the engine's original result cache) over an optional
// crash-safe on-disk tier (Disk) of versioned, checksummed blobs,
// composed by Tiered. Artifacts are addressed by Key — a SHA-256 content
// address computed by the caller (the engine derives it from the
// canonical request form) — so a key hit is a proof the stored artifact
// answers the lookup, across processes and restarts. The store is
// value-agnostic: callers supply per-call encode/decode functions, which
// lets one disk tier hold heterogeneous artifacts (compiled results,
// pipeline stage snapshots, …) while each typed view keeps its own
// in-memory front.
package store

import (
	"crypto/sha256"
	"encoding/hex"
)

// Key is a content address: SHA-256 of the canonical form of whatever
// the artifact answers (the engine hashes circuit + topology + resolved
// pipeline). Two artifacts share a key exactly when they are
// interchangeable.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (also the disk tier's blob
// file name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Tier identifies which tier served a lookup.
type Tier int

const (
	// TierNone means the lookup missed every tier.
	TierNone Tier = iota
	// TierMemory means the in-memory LRU front served the lookup.
	TierMemory
	// TierDisk means the persistent disk tier served the lookup (the
	// value was then promoted into the memory front).
	TierDisk
)

var tierNames = [...]string{"", "memory", "disk"}

func (t Tier) String() string {
	if int(t) < len(tierNames) {
		return tierNames[t]
	}
	return "tier(?)"
}

// LRUStats is a point-in-time snapshot of an in-memory tier's counters.
type LRUStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Capacity  int
}

// HitRate is hits / (hits + misses), or 0 before any lookup.
func (s LRUStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
