package store

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func keyOf(s string) Key { return Key(sha256.Sum256([]byte(s))) }

func payload(s string, n int) []byte {
	return []byte(strings.Repeat(s, n))
}

// diskDir returns the directory disk-tier tests run under: t.TempDir by
// default, or a fresh directory under $SSYNC_STORE_DIR when set (CI
// points it at a tmpfs mount to exercise the round-trip there).
func diskDir(t *testing.T) string {
	t.Helper()
	if base := os.Getenv("SSYNC_STORE_DIR"); base != "" {
		dir, err := os.MkdirTemp(base, "store-test-*")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { os.RemoveAll(dir) })
		return dir
	}
	return t.TempDir()
}

func TestDiskRoundTrip(t *testing.T) {
	dir := diskDir(t)
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := keyOf("round-trip")
	want := payload("artifact", 100)
	if _, ok := d.Get(k); ok {
		t.Fatal("hit on empty tier")
	}
	if err := d.Put(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get(k)
	if !ok || string(got) != string(want) {
		t.Fatalf("Get after Put: ok=%v payload match=%v", ok, string(got) == string(want))
	}

	// A fresh Disk over the same directory — a process restart — serves
	// the same blob.
	d2, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok = d2.Get(k)
	if !ok || string(got) != string(want) {
		t.Fatalf("Get after reopen: ok=%v payload match=%v", ok, string(got) == string(want))
	}
	st := d2.Stats()
	if st.Entries != 1 || st.Hits != 1 {
		t.Errorf("reopened stats = %+v, want 1 entry 1 hit", st)
	}
}

func TestDiskCorruptBlobIsACleanMiss(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := keyOf("to-corrupt")
	if err := d.Put(k, payload("x", 500)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k.String()+blobSuffix)

	// Truncate mid-payload: the length check fails, the blob is dropped,
	// and the lookup is a miss — never a short artifact.
	if err := os.Truncate(path, int64(headerLen+10)); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(k); ok {
		t.Fatal("truncated blob served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt blob not removed: %v", err)
	}
	if st := d.Stats(); st.Corrupt != 1 || st.Entries != 0 {
		t.Errorf("stats after corruption = %+v, want Corrupt=1 Entries=0", st)
	}

	// A healing Put restores the entry.
	if err := d.Put(k, payload("x", 500)); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(k); !ok {
		t.Fatal("healed blob missed")
	}

	// Flip a payload bit: the checksum catches it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerLen+3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(k); ok {
		t.Fatal("bit-flipped blob served as a hit")
	}
}

func TestDiskEvictionBounds(t *testing.T) {
	dir := t.TempDir()
	blob := payload("e", 1000)
	blobSize := int64(headerLen + len(blob))
	max := 4 * blobSize
	d, err := OpenDisk(dir, max)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := d.Put(keyOf(fmt.Sprintf("evict-%d", i)), blob); err != nil {
			t.Fatal(err)
		}
		if st := d.Stats(); st.Bytes > max {
			t.Fatalf("after put %d: %d bytes on disk exceeds cap %d", i, st.Bytes, max)
		}
	}
	st := d.Stats()
	if st.Entries != 4 || st.Evictions != 6 {
		t.Errorf("stats = %+v, want 4 entries, 6 evictions", st)
	}
	// The survivors are the most recently stored.
	for i := 6; i < 10; i++ {
		if _, ok := d.Get(keyOf(fmt.Sprintf("evict-%d", i))); !ok {
			t.Errorf("recent blob %d evicted", i)
		}
	}
	// A blob that cannot fit alone is rejected, not stored truncated.
	if err := d.Put(keyOf("whale"), payload("w", int(max))); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Rejected != 1 || st.Bytes > max {
		t.Errorf("oversized put: stats = %+v, want Rejected=1 within cap", st)
	}
}

func TestDiskAccessOrderSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	blob := payload("a", 100)
	blobSize := int64(headerLen + len(blob))
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	old, fresh := keyOf("old"), keyOf("fresh")
	if err := d.Put(old, blob); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(fresh, blob); err != nil {
		t.Fatal(err)
	}
	// Touch "old" last so it is the most recently accessed; mtimes carry
	// that ordering across the reopen. Filesystem mtime granularity can
	// be coarse, so force a visible gap.
	past := time.Now().Add(-time.Hour)
	os.Chtimes(filepath.Join(dir, fresh.String()+blobSuffix), past, past)
	if _, ok := d.Get(old); !ok {
		t.Fatal("old missed")
	}

	// Reopen with room for one blob: the least recently accessed
	// ("fresh", backdated) must be the one evicted.
	d2, err := OpenDisk(dir, blobSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d2.Get(old); !ok {
		t.Error("most recently accessed blob evicted on reopen")
	}
	if _, ok := d2.Get(fresh); ok {
		t.Error("least recently accessed blob survived a cap it cannot fit")
	}
}

func TestDiskOpenRemovesStrayTempFiles(t *testing.T) {
	dir := t.TempDir()
	stray := filepath.Join(dir, "put-123.tmp")
	if err := os.WriteFile(stray, []byte("half a blob"), 0o644); err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(dir, "README")
	if err := os.WriteFile(foreign, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Error("stray temp file survived Open")
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Error("foreign file removed by Open")
	}
}

func identity(b []byte) ([]byte, error) { return b, nil }

func TestTieredPromotesDiskHits(t *testing.T) {
	disk, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered[[]byte](1, disk)
	a, b := keyOf("a"), keyOf("b")
	tiered.Put(a, payload("a", 10), identity)
	tiered.Put(b, payload("b", 10), identity) // evicts a from the 1-entry memory front

	if v, tier, ok := tiered.Get(b, identity); !ok || tier != TierMemory || string(v) != strings.Repeat("b", 10) {
		t.Fatalf("b: tier=%v ok=%v", tier, ok)
	}
	// a fell out of memory but lives on disk; the hit promotes it back.
	if _, tier, ok := tiered.Get(a, identity); !ok || tier != TierDisk {
		t.Fatalf("a after memory eviction: tier=%v ok=%v, want disk hit", tier, ok)
	}
	if _, tier, ok := tiered.Get(a, identity); !ok || tier != TierMemory {
		t.Fatalf("a after promotion: tier=%v ok=%v, want memory hit", tier, ok)
	}
	if _, tier, ok := tiered.Get(keyOf("absent"), identity); ok || tier != TierNone {
		t.Fatalf("absent key: tier=%v ok=%v", tier, ok)
	}

	st := tiered.Stats()
	if st.MemHits != 2 || st.DiskHits != 1 || st.Misses != 1 || st.Puts != 2 || !st.HasDisk {
		t.Errorf("stats = %+v, want 2 mem hits, 1 disk hit, 1 miss, 2 puts", st)
	}
	if got := st.HitRate(); got != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", got)
	}
}

func TestTieredMemoryOnly(t *testing.T) {
	tiered := NewTiered[int](4, nil)
	k := keyOf("n")
	tiered.Put(k, 42, nil)
	if v, tier, ok := tiered.Get(k, nil); !ok || tier != TierMemory || v != 42 {
		t.Fatalf("memory-only get: v=%d tier=%v ok=%v", v, tier, ok)
	}
	if _, _, ok := tiered.Get(keyOf("other"), nil); ok {
		t.Fatal("hit on absent key")
	}
	if st := tiered.Stats(); st.HasDisk || st.MemHits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTieredDecodeFailureIsAMiss(t *testing.T) {
	disk, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered[[]byte](1, disk)
	a := keyOf("versioned")
	tiered.Put(a, payload("v1", 5), identity)
	tiered.Put(keyOf("spill"), payload("s", 5), identity) // push a out of memory
	bad := func([]byte) ([]byte, error) { return nil, fmt.Errorf("format bump") }
	if _, _, ok := tiered.Get(a, bad); ok {
		t.Fatal("undecodable blob served as a hit")
	}
	if st := tiered.Stats(); st.Errors != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want Errors=1 Misses=1", st)
	}
}

func TestLRUGenericStandalone(t *testing.T) {
	lru := NewLRU[string](2)
	a, b, c := keyOf("a"), keyOf("b"), keyOf("c")
	lru.Put(a, "A")
	lru.Put(b, "B")
	if v, ok := lru.Get(a); !ok || v != "A" {
		t.Fatalf("a = %q, %v", v, ok)
	}
	lru.Put(c, "C") // evicts b (least recently used)
	if _, ok := lru.Get(b); ok {
		t.Fatal("b survived eviction")
	}
	if st := lru.Stats(); st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Errorf("stats = %+v", st)
	}
}
