package store

import (
	"context"
	"sync"
	"time"

	"ssync/internal/obs"
)

// TieredStats is a point-in-time snapshot of one tiered store, taken
// under a single lock so the per-tier counters are mutually consistent
// (a reader can never observe a memory hit that the miss counter has not
// yet stopped counting — the "torn read" a per-tier snapshot would
// allow).
type TieredStats struct {
	// MemHits counts lookups served by the in-memory front.
	MemHits uint64
	// DiskHits counts lookups served by the disk tier (the decoded value
	// was promoted into the memory front).
	DiskHits uint64
	// Misses counts lookups no tier could serve.
	Misses uint64
	// Puts counts artifacts stored.
	Puts uint64
	// Errors counts encode/decode/write failures against the disk tier;
	// each is absorbed as a miss (lookups) or a memory-only store (puts).
	Errors uint64
	// Mem details the in-memory front. Its Hits/Misses are the LRU's own
	// internal counters (a disk promotion registers as an LRU miss then a
	// put); use MemHits/DiskHits/Misses above for the tiered view.
	Mem LRUStats
	// Disk details the disk tier; zero when the store is memory-only.
	Disk DiskStats
	// HasDisk reports whether a disk tier is attached.
	HasDisk bool
}

// HitRate is (memory + disk hits) / lookups, or 0 before any lookup.
func (s TieredStats) HitRate() float64 {
	total := s.MemHits + s.DiskHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.MemHits+s.DiskHits) / float64(total)
}

// Tiered is a typed view over the two cache tiers: an in-memory LRU of
// decoded values in front of an optional shared disk tier of encoded
// blobs. Lookups fall through memory → disk (promoting disk hits);
// stores write through to both. Serialization is per-call — Get takes
// the decoder, Put the encoder — so decoding may close over request
// context (e.g. the device topology a compiled result is rebound to)
// and several typed views can share one disk tier. Safe for concurrent
// use. The mutex guards the memory tier and the counters only — encode,
// decode and disk I/O (fsync included) run outside it, so a slow disk
// write never blocks concurrent memory-tier hits; Stats still reads
// every counter of this store under the one lock, which is what makes
// it a consistent snapshot.
type Tiered[V any] struct {
	mu       sync.Mutex
	mem      *LRU[V]
	disk     *Disk
	memHits  uint64
	diskHits uint64
	misses   uint64
	puts     uint64
	errors   uint64
}

// NewTiered returns a tiered store with an in-memory front of memCap
// entries (min 1) over disk, which may be nil for a memory-only store
// and may be shared with other Tiered instances.
func NewTiered[V any](memCap int, disk *Disk) *Tiered[V] {
	return &Tiered[V]{mem: NewLRU[V](memCap), disk: disk}
}

// Get returns the value stored under key and the tier that served it.
// Disk blobs that fail to decode (e.g. written by an older format) are
// absorbed as misses; the next Put overwrites them.
func (t *Tiered[V]) Get(key Key, decode func([]byte) (V, error)) (V, Tier, bool) {
	t.mu.Lock()
	if v, ok := t.mem.Get(key); ok {
		t.memHits++
		t.mu.Unlock()
		return v, TierMemory, true
	}
	t.mu.Unlock()
	var zero V
	if t.disk != nil && decode != nil {
		if blob, ok := t.disk.Get(key); ok {
			// Decode outside the lock; two concurrent misses may both
			// decode and promote, which is benign — same key, same
			// content.
			v, err := decode(blob)
			t.mu.Lock()
			defer t.mu.Unlock()
			if err == nil {
				t.mem.Put(key, v)
				t.diskHits++
				return v, TierDisk, true
			}
			t.errors++
			t.misses++
			return zero, TierNone, false
		}
	}
	t.mu.Lock()
	t.misses++
	t.mu.Unlock()
	return zero, TierNone, false
}

// GetTraced is Get plus a trace span for the disk tier: when the
// request is traced and the lookup actually left the memory front (a
// disk hit, or a miss with a disk tier attached), a "store.disk" span
// is recorded under the current context span so tiered-cache latency —
// the one cache cost that involves real I/O — shows up in the request
// timeline. Untraced requests take the plain Get path unchanged.
func (t *Tiered[V]) GetTraced(ctx context.Context, key Key, decode func([]byte) (V, error)) (V, Tier, bool) {
	tr := obs.TraceFrom(ctx)
	if tr == nil {
		return t.Get(key, decode)
	}
	start := time.Now()
	v, tier, ok := t.Get(key, decode)
	if tier != TierMemory && t.disk != nil && decode != nil {
		tr.Record("", obs.SpanID(ctx), "store.disk", start, time.Since(start),
			map[string]string{"hit": boolStr(tier == TierDisk)})
	}
	return v, tier, ok
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// Put stores the value under key in the memory front and, when a disk
// tier is attached, as an encoded blob. Encode or write failures degrade
// to a memory-only store (counted in Errors), never a lost value.
func (t *Tiered[V]) Put(key Key, v V, encode func(V) ([]byte, error)) {
	t.mu.Lock()
	t.mem.Put(key, v)
	t.puts++
	t.mu.Unlock()
	if t.disk == nil || encode == nil {
		return
	}
	// Encode and write (fsync included) outside the lock: publication to
	// the disk tier needs no ordering with the memory tier beyond what
	// content addressing already gives.
	blob, err := encode(v)
	if err == nil {
		err = t.disk.Put(key, blob)
	}
	if err != nil {
		t.mu.Lock()
		t.errors++
		t.mu.Unlock()
	}
}

// Stats snapshots every counter of both tiers under one lock — the
// single consistent view the engine's Stats (and /v2/stats) read.
func (t *Tiered[V]) Stats() TieredStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TieredStats{
		MemHits: t.memHits, DiskHits: t.diskHits, Misses: t.misses,
		Puts: t.puts, Errors: t.errors,
		Mem: t.mem.Stats(),
	}
	if t.disk != nil {
		s.Disk = t.disk.Stats()
		s.HasDisk = true
	}
	return s
}
