// Package workloads generates the benchmark circuits of Table 2 of the
// paper: the Cuccaro ripple-carry adder, Bernstein-Vazirani, QAOA on a
// nearest-neighbour path, the alternating layered ansatz (ALT), the quantum
// Fourier transform, and first-order Trotterised Heisenberg-chain dynamics.
// All generators emit circuits already in the compiler's native basis
// (single-qubit gates + cx).
package workloads

import (
	"fmt"
	"math"
	"strings"

	"ssync/internal/circuit"
)

// Adder builds the Cuccaro ripple-carry adder on bits-bit operands:
// 2*bits + 2 qubits (carry-in, a, b, carry-out). Toffolis are expanded with
// the standard 6-CNOT decomposition, giving 16*bits + 1 two-qubit gates —
// the "short-distance gates" communication pattern of Table 2.
func Adder(bits int) *circuit.Circuit {
	if bits < 1 {
		panic(fmt.Sprintf("workloads: adder needs >= 1 bit, got %d", bits))
	}
	n := 2*bits + 2
	c := circuit.NewCircuit(n)
	c.Name = fmt.Sprintf("Adder_%d", bits)
	// Qubit layout mirrors Cuccaro et al.: interleaved for locality.
	// cin = 0, b_i = 1 + 2i, a_i = 2 + 2i, cout = 2*bits + 1.
	cin := 0
	b := func(i int) int { return 1 + 2*i }
	a := func(i int) int { return 2 + 2*i }
	cout := 2*bits + 1

	maj := func(x, y, z int) { // MAJ(c, b, a)
		c.CX(z, y)
		c.CX(z, x)
		c.CCX(x, y, z)
	}
	uma := func(x, y, z int) { // UMA(c, b, a), 2-CNOT variant
		c.CCX(x, y, z)
		c.CX(z, x)
		c.CX(x, y)
	}

	maj(cin, b(0), a(0))
	for i := 1; i < bits; i++ {
		maj(a(i-1), b(i), a(i))
	}
	c.CX(a(bits-1), cout)
	for i := bits - 1; i >= 1; i-- {
		uma(a(i-1), b(i), a(i))
	}
	uma(cin, b(0), a(0))
	return c.DecomposeToBasis()
}

// AdderOfSize builds the largest Cuccaro adder fitting in at most q qubits
// (used by the application-size sweeps of Figs. 12, 14, 15).
func AdderOfSize(q int) *circuit.Circuit {
	bits := (q - 2) / 2
	if bits < 1 {
		bits = 1
	}
	return Adder(bits)
}

// BV builds the Bernstein-Vazirani circuit over n data qubits plus one
// ancilla with the all-ones secret string: n long-distance CX gates, all
// targeting the ancilla (Table 2's "long-distance gates" pattern).
func BV(n int) *circuit.Circuit {
	if n < 1 {
		panic(fmt.Sprintf("workloads: bv needs >= 1 data qubit, got %d", n))
	}
	c := circuit.NewCircuit(n + 1)
	c.Name = fmt.Sprintf("BV_%d", n)
	anc := n
	for i := 0; i < n; i++ {
		c.H(i)
	}
	c.X(anc).H(anc)
	for i := 0; i < n; i++ {
		c.CX(i, anc)
	}
	for i := 0; i < n; i++ {
		c.H(i)
	}
	return c
}

// QAOA builds a p-layer QAOA MaxCut ansatz on the n-vertex path graph
// (nearest-neighbour gates): per layer, an rzz on every path edge (2 CX
// each) followed by the rx mixer. Two-qubit count: 2*(n-1)*p.
func QAOA(n, p int) *circuit.Circuit {
	if n < 2 || p < 1 {
		panic(fmt.Sprintf("workloads: qaoa needs n>=2, p>=1; got n=%d p=%d", n, p))
	}
	c := circuit.NewCircuit(n)
	c.Name = fmt.Sprintf("QAOA_%d", n)
	for i := 0; i < n; i++ {
		c.H(i)
	}
	for layer := 0; layer < p; layer++ {
		gamma := math.Pi * float64(layer+1) / float64(2*p)
		beta := math.Pi * float64(p-layer) / float64(2*p)
		for i := 0; i+1 < n; i++ {
			c.RZZ(gamma, i, i+1)
		}
		for i := 0; i < n; i++ {
			c.RX(beta, i)
		}
	}
	return c.DecomposeToBasis()
}

// ALT builds the alternating layered ansatz of Nakaji & Yamamoto: each
// superlayer applies RY rotations followed by CX entanglers on even pairs,
// then RY + CX on odd pairs. Two-qubit count per superlayer: n-1 (for even
// n), i.e. nearest-neighbour gates as in Table 2.
func ALT(n, layers int) *circuit.Circuit {
	if n < 2 || layers < 1 {
		panic(fmt.Sprintf("workloads: alt needs n>=2, layers>=1; got n=%d layers=%d", n, layers))
	}
	c := circuit.NewCircuit(n)
	c.Name = fmt.Sprintf("ALT_%d", n)
	angle := func(l, q int) float64 {
		return math.Pi * float64((l*37+q*11)%17+1) / 18
	}
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.RY(angle(2*l, q), q)
		}
		for i := 0; i+1 < n; i += 2 {
			c.CX(i, i+1)
		}
		for q := 0; q < n; q++ {
			c.RY(angle(2*l+1, q), q)
		}
		for i := 1; i+1 < n; i += 2 {
			c.CX(i, i+1)
		}
	}
	return c
}

// QFT builds the full n-qubit quantum Fourier transform. Controlled-phase
// gates are decomposed into 2 CX + 3 RZ, matching the paper's QFT gate
// counts (QFT_24: 552, QFT_64: 4032 two-qubit gates); final wire-reversal
// swaps are omitted, as in Table 2.
func QFT(n int) *circuit.Circuit {
	if n < 1 {
		panic(fmt.Sprintf("workloads: qft needs >= 1 qubit, got %d", n))
	}
	c := circuit.NewCircuit(n)
	c.Name = fmt.Sprintf("QFT_%d", n)
	for i := 0; i < n; i++ {
		c.H(i)
		for j := i + 1; j < n; j++ {
			theta := math.Pi / math.Pow(2, float64(j-i))
			c.Append(circuit.New("cp", []int{j, i}, theta))
		}
	}
	return c.DecomposeToBasis()
}

// Heisenberg builds steps first-order Trotter steps of the spin-1/2
// Heisenberg XXX chain on n sites: per step and per bond, an rxx, ryy and
// rzz interaction (2 CX each), i.e. 6*(n-1) two-qubit gates per step.
// Heisenberg_48 with 48 steps gives the 13,536 gates of Table 2.
func Heisenberg(n, steps int) *circuit.Circuit {
	if n < 2 || steps < 1 {
		panic(fmt.Sprintf("workloads: heisenberg needs n>=2, steps>=1; got n=%d steps=%d", n, steps))
	}
	c := circuit.NewCircuit(n)
	c.Name = fmt.Sprintf("Heisenberg_%d", n)
	dt := 0.1
	for s := 0; s < steps; s++ {
		for i := 0; i+1 < n; i++ {
			c.Append(circuit.New("rxx", []int{i, i + 1}, 2*dt))
			c.Append(circuit.New("ryy", []int{i, i + 1}, 2*dt))
			c.RZZ(2*dt, i, i+1)
		}
	}
	return c.DecomposeToBasis()
}

// Spec identifies a named benchmark instance, mirroring Table 2.
type Spec struct {
	Name          string // e.g. "Adder_32"
	Qubits        int
	Communication string
}

// Table2 lists the paper's benchmark suite in its Table 2 order.
func Table2() []Spec {
	return []Spec{
		{"Adder_32", 66, "Short-distance gates"},
		{"QAOA_64", 64, "Nearest-neighbor gates"},
		{"ALT_64", 64, "Nearest-neighbor gates"},
		{"BV_64", 65, "Long-distance gates"},
		{"QFT_24", 24, "Long-distance gates"},
		{"QFT_64", 64, "Long-distance gates"},
		{"Heisenberg_48", 48, "Long-distance gates"},
	}
}

// maxBuildSize bounds Build's name-parsed problem size.
const maxBuildSize = 1 << 14

// ParseSize extracts the problem size from a Table 2-style benchmark
// name ("QFT_24" -> 24). It is the exact parser Build uses, exported so
// services can enforce size limits without risking parser divergence.
func ParseSize(name string) (int, bool) {
	parts := strings.SplitN(name, "_", 2)
	if len(parts) != 2 {
		return 0, false
	}
	var size int
	if _, err := fmt.Sscanf(parts[1], "%d", &size); err != nil {
		return 0, false
	}
	return size, true
}

// Build constructs a benchmark by Table 2 name (e.g. "QFT_24", "Adder_32").
func Build(name string) (*circuit.Circuit, error) {
	parts := strings.SplitN(name, "_", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("workloads: malformed benchmark name %q (want family_size)", name)
	}
	size, ok := ParseSize(name)
	if !ok {
		return nil, fmt.Errorf("workloads: malformed benchmark size in %q", name)
	}
	if size < 1 {
		// Error here so caller-supplied (e.g. network) names get an error
		// instead of reaching the panicking family constructors.
		return nil, fmt.Errorf("workloads: benchmark size must be >= 1 (got %d)", size)
	}
	if size > maxBuildSize {
		// Backstop against name-driven gigabyte allocations (the largest
		// Table 2 entry is 66); call the family constructors directly for
		// deliberate larger instances.
		return nil, fmt.Errorf("workloads: benchmark size %d exceeds the %d limit for named construction", size, maxBuildSize)
	}
	// Table 2 naming: the suffix is the problem size (operand bits for the
	// adder, data qubits for BV), not the device qubit count.
	switch strings.ToLower(parts[0]) {
	case "adder":
		return Adder(size), nil
	case "bv":
		return BV(size), nil
	case "qaoa":
		return QAOA(size, 10), nil
	case "alt":
		return ALT(size, 20), nil
	case "qft":
		return QFT(size), nil
	case "heisenberg":
		return Heisenberg(size, 48), nil
	default:
		return nil, fmt.Errorf("workloads: unknown benchmark family %q", parts[0])
	}
}

// BySize constructs a benchmark family instance by approximate qubit count,
// used for the application-size sweeps. Family is case-insensitive and one
// of adder, bv, qaoa, alt, qft, heisenberg. For adder, size counts qubits
// (the paper labels Adder_32 by operand bits; use Build("Adder_32") for
// that convention).
func BySize(family string, size int) (*circuit.Circuit, error) {
	switch strings.ToLower(family) {
	case "adder":
		// Table 2 convention: Adder_32 means 32-bit operands (66 qubits).
		if size <= 40 {
			return Adder(size), nil
		}
		return AdderOfSize(size), nil
	case "bv":
		return BV(size - 1), nil
	case "qaoa":
		return QAOA(size, 10), nil
	case "alt":
		return ALT(size, 20), nil
	case "qft":
		return QFT(size), nil
	case "heisenberg":
		return Heisenberg(size, 48), nil
	default:
		return nil, fmt.Errorf("workloads: unknown benchmark family %q", family)
	}
}
