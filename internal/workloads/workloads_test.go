package workloads

import (
	"testing"
)

func TestAdderShape(t *testing.T) {
	c := Adder(32)
	if c.NumQubits != 66 {
		t.Errorf("Adder(32) qubits = %d, want 66 (Table 2)", c.NumQubits)
	}
	// 16*bits + 1 two-qubit gates after Toffoli decomposition.
	if got, want := c.TwoQubitCount(), 16*32+1; got != want {
		t.Errorf("Adder(32) 2Q gates = %d, want %d", got, want)
	}
	for _, g := range c.Gates {
		if g.Arity() > 2 {
			t.Fatalf("adder emitted %d-qubit gate %q", g.Arity(), g.Name)
		}
	}
}

func TestAdderSmall(t *testing.T) {
	c := Adder(1)
	if c.NumQubits != 4 {
		t.Errorf("Adder(1) qubits = %d, want 4", c.NumQubits)
	}
	if got, want := c.TwoQubitCount(), 17; got != want {
		t.Errorf("Adder(1) 2Q gates = %d, want %d", got, want)
	}
}

func TestAdderOfSize(t *testing.T) {
	c := AdderOfSize(66)
	if c.NumQubits != 66 {
		t.Errorf("AdderOfSize(66) qubits = %d, want 66", c.NumQubits)
	}
	c2 := AdderOfSize(67)
	if c2.NumQubits > 67 {
		t.Errorf("AdderOfSize(67) qubits = %d, exceeds request", c2.NumQubits)
	}
}

func TestBVShape(t *testing.T) {
	c := BV(64)
	if c.NumQubits != 65 {
		t.Errorf("BV(64) qubits = %d, want 65 (Table 2)", c.NumQubits)
	}
	if got := c.TwoQubitCount(); got != 64 {
		t.Errorf("BV(64) 2Q gates = %d, want 64 (Table 2)", got)
	}
	// Every CX targets the ancilla (long-distance pattern).
	for _, g := range c.Gates {
		if g.Name == "cx" && g.Qubits[1] != 64 {
			t.Errorf("BV cx targets %d, want ancilla 64", g.Qubits[1])
		}
	}
}

func TestQAOAShape(t *testing.T) {
	c := QAOA(64, 10)
	if got, want := c.TwoQubitCount(), 2*63*10; got != want {
		t.Errorf("QAOA(64,10) 2Q gates = %d, want %d (Table 2: 1260)", got, want)
	}
	if want := 1260; c.TwoQubitCount() != want {
		t.Errorf("QAOA_64 2Q gates = %d, want %d", c.TwoQubitCount(), want)
	}
	// Nearest-neighbour only.
	for _, g := range c.Gates {
		if g.IsTwoQubit() {
			d := g.Qubits[0] - g.Qubits[1]
			if d != 1 && d != -1 {
				t.Fatalf("QAOA gate on non-adjacent pair %v", g.Qubits)
			}
		}
	}
}

func TestALTShape(t *testing.T) {
	c := ALT(64, 20)
	if got, want := c.TwoQubitCount(), 20*63; got != want {
		t.Errorf("ALT(64,20) 2Q gates = %d, want %d (Table 2: 1260)", got, want)
	}
	for _, g := range c.Gates {
		if g.IsTwoQubit() {
			d := g.Qubits[1] - g.Qubits[0]
			if d != 1 {
				t.Fatalf("ALT entangler on non-adjacent pair %v", g.Qubits)
			}
		}
	}
}

func TestQFTShape(t *testing.T) {
	for _, n := range []int{24, 64} {
		c := QFT(n)
		if got, want := c.TwoQubitCount(), n*(n-1); got != want {
			t.Errorf("QFT(%d) 2Q gates = %d, want %d (Table 2)", n, got, want)
		}
	}
	// Table 2 values explicitly.
	if got := QFT(24).TwoQubitCount(); got != 552 {
		t.Errorf("QFT_24 2Q = %d, want 552", got)
	}
	if got := QFT(64).TwoQubitCount(); got != 4032 {
		t.Errorf("QFT_64 2Q = %d, want 4032", got)
	}
}

func TestHeisenbergShape(t *testing.T) {
	c := Heisenberg(48, 48)
	if got, want := c.TwoQubitCount(), 13536; got != want {
		t.Errorf("Heisenberg(48,48) 2Q gates = %d, want %d (Table 2)", got, want)
	}
}

func TestAllValidate(t *testing.T) {
	for _, c := range []interface {
		Validate() error
	}{
		Adder(4), BV(8), QAOA(8, 2), ALT(8, 3), QFT(6), Heisenberg(6, 2),
	} {
		if err := c.Validate(); err != nil {
			t.Errorf("generated circuit invalid: %v", err)
		}
	}
}

func TestBuildByName(t *testing.T) {
	for _, spec := range Table2() {
		c, err := Build(spec.Name)
		if err != nil {
			t.Errorf("Build(%q): %v", spec.Name, err)
			continue
		}
		if c.NumQubits != spec.Qubits {
			t.Errorf("%s: qubits = %d, want %d", spec.Name, c.NumQubits, spec.Qubits)
		}
	}
	if _, err := Build("nope"); err == nil {
		t.Error("Build(nope) should fail")
	}
	if _, err := Build("zap_12"); err == nil {
		t.Error("Build(zap_12) should fail")
	}
}

func TestTable2GateCounts(t *testing.T) {
	want := map[string]int{
		"Adder_32":      513, // 16*32+1 with 6-CNOT Toffolis (paper: 545)
		"QAOA_64":       1260,
		"ALT_64":        1260,
		"BV_64":         64,
		"QFT_24":        552,
		"QFT_64":        4032,
		"Heisenberg_48": 13536,
	}
	for name, w := range want {
		c, err := Build(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.TwoQubitCount(); got != w {
			t.Errorf("%s 2Q gates = %d, want %d", name, got, w)
		}
	}
}

func TestBySizeFamilies(t *testing.T) {
	for _, fam := range []string{"adder", "bv", "qaoa", "alt", "qft", "heisenberg"} {
		c, err := BySize(fam, 50)
		if err != nil {
			t.Errorf("BySize(%s, 50): %v", fam, err)
			continue
		}
		if c.NumQubits > 50+1 {
			t.Errorf("BySize(%s, 50) produced %d qubits", fam, c.NumQubits)
		}
		if c.TwoQubitCount() == 0 {
			t.Errorf("BySize(%s, 50) has no 2Q gates", fam)
		}
	}
}
