package ssync

import (
	"context"
	"encoding/json"
	"testing"
)

// Tests of the public pass-pipeline surface: RegisterPass, Passes,
// BuiltinPipeline and CompileRequest.Pipeline.

func TestPublicPipelineMatchesCannedCompiler(t *testing.T) {
	c := QFT(12)
	topo := GridDevice(2, 2, 8)
	ctx := context.Background()

	named := Do(ctx, CompileRequest{Circuit: c, Topo: topo, Compiler: SSyncCompilerName})
	if named.Err != nil {
		t.Fatal(named.Err)
	}
	canned, ok := BuiltinPipeline(SSyncCompilerName)
	if !ok || len(canned) == 0 {
		t.Fatalf("BuiltinPipeline(%q) = %v, %v", SSyncCompilerName, canned, ok)
	}
	explicit := Do(ctx, CompileRequest{Circuit: c, Topo: topo, Pipeline: canned})
	if explicit.Err != nil {
		t.Fatal(explicit.Err)
	}
	if named.Key != explicit.Key {
		t.Errorf("canned key %s != explicit pipeline key %s", named.Key, explicit.Key)
	}
	if !explicit.CacheHit && !named.CacheHit {
		t.Error("equivalent requests did not share the default engine's cache")
	}
	if len(named.PassTimings) == 0 {
		t.Error("canned compile reports no pass timings")
	}
}

func TestPublicRegisterPass(t *testing.T) {
	if err := RegisterPass("", nil); err == nil {
		t.Error("empty pass registration accepted")
	}
	if err := RegisterPass(RouteSSyncPass,
		func(json.RawMessage) (Pass, error) { return nil, nil }); err == nil {
		t.Error("built-in pass name re-registered")
	}
	found := map[string]bool{}
	for _, name := range Passes() {
		found[name] = true
	}
	for _, want := range []string{DecomposeBasisPass, PlaceGreedyPass, PlaceAnnealedPass,
		RouteSSyncPass, RouteMuraliPass, RouteDaiPass, VerifyStatevecPass} {
		if !found[want] {
			t.Errorf("built-in pass %q missing from Passes()", want)
		}
	}
}
