#!/bin/sh
# bench_gate.sh [baseline.json candidate.json] — fail the build when the
# candidate benchmark document regresses more than 15% against the
# baseline (sub-millisecond entries warn only; see cmd/bench).
#
# With no arguments the two highest-numbered BENCH_<pr>.json files in
# the repository root are compared, oldest as baseline. Run from the
# repository root.
set -eu

if [ $# -eq 2 ]; then
    old=$1
    new=$2
else
    # Numeric sort on the <pr> component, newest last.
    set -- $(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n)
    if [ $# -lt 2 ]; then
        echo "bench gate: need two BENCH_<pr>.json documents, found $#; skipping" >&2
        exit 0
    fi
    while [ $# -gt 2 ]; do shift; done
    old=$1
    new=$2
fi

exec go run ./cmd/bench -gate-old "$old" -gate-new "$new" "${BENCH_GATE_FLAGS:--gate-threshold=15}"
