// Package ssync is a Go implementation of S-SYNC — shuttle and SWAP
// co-optimisation for trapped-ion Quantum Charge-Coupled Device (QCCD)
// architectures (Zhu, Wu, Wang & Wang, ISCA 2025) — together with the full
// evaluation stack the paper builds on: an OpenQASM 2.0 front end,
// benchmark circuit generators, QCCD device models, baseline compilers,
// and timing/fidelity simulation.
//
// Quick start:
//
//	c := ssync.QFT(24)
//	topo, _ := ssync.TopologyByName("G-2x3", 17)
//	resp := ssync.Do(ctx, ssync.CompileRequest{Circuit: c, Topo: topo})
//	if resp.Err != nil { ... }
//	m := ssync.Simulate(resp.Result.Schedule, topo, ssync.DefaultSimOptions())
//	fmt.Printf("shuttles=%d swaps=%d success=%.3e\n",
//	    resp.Result.Counts.Shuttles, resp.Result.Counts.Swaps, m.SuccessRate)
//
// Compilers are addressed by registry name ("ssync", "murali", "dai",
// "ssync-annealed", plus anything added via RegisterCompiler); identical
// requests are served from a content-addressed cache, and concurrent
// identical requests coalesce into one compilation.
//
// The built-in compilers are canned pass pipelines: decompose, place,
// route and verify stages registered in an open pass registry
// (RegisterPass). A CompileRequest may compose them explicitly via its
// Pipeline field — swap the placer, skip decomposition, append
// verification — and a built-in name keys identically to its canned
// pipeline, so both forms share cache entries.
package ssync

import (
	"context"
	"log/slog"
	"sync"
	"time"

	"ssync/internal/auth"
	"ssync/internal/circuit"
	"ssync/internal/core"
	"ssync/internal/device"
	"ssync/internal/engine"
	"ssync/internal/exp"
	"ssync/internal/mapping"
	"ssync/internal/noise"
	"ssync/internal/obs"
	"ssync/internal/pass"
	"ssync/internal/qasm"
	"ssync/internal/sched"
	"ssync/internal/schedule"
	"ssync/internal/sim"
	"ssync/internal/store"
	"ssync/internal/workloads"
)

// ---- circuits ----

// Circuit is an ordered gate list over a fixed set of logical qubits.
type Circuit = circuit.Circuit

// Gate is one quantum instruction.
type Gate = circuit.Gate

// NewCircuit returns an empty circuit over n qubits.
func NewCircuit(n int) *Circuit { return circuit.NewCircuit(n) }

// NewGate constructs a gate from its mnemonic, qubits and parameters.
func NewGate(name string, qubits []int, params ...float64) Gate {
	return circuit.New(name, qubits, params...)
}

// GateCondition is the classical control of an OpenQASM 2.0
// `if (creg==n) gate;` statement, attached to a Gate via its Cond field.
type GateCondition = circuit.Condition

// ParseQASM parses an OpenQASM 2.0 program.
func ParseQASM(src string) (*Circuit, error) { return qasm.Parse(src) }

// WriteQASM renders a circuit as OpenQASM 2.0.
func WriteQASM(c *Circuit) string { return qasm.Write(c) }

// ---- workload generators (Table 2) ----

// Adder builds the Cuccaro ripple-carry adder on bits-bit operands.
func Adder(bits int) *Circuit { return workloads.Adder(bits) }

// BV builds Bernstein-Vazirani over n data qubits plus one ancilla.
func BV(n int) *Circuit { return workloads.BV(n) }

// QAOA builds a p-layer QAOA ansatz on the n-vertex path graph.
func QAOA(n, p int) *Circuit { return workloads.QAOA(n, p) }

// ALT builds the alternating layered ansatz.
func ALT(n, layers int) *Circuit { return workloads.ALT(n, layers) }

// QFT builds the n-qubit quantum Fourier transform.
func QFT(n int) *Circuit { return workloads.QFT(n) }

// Heisenberg builds Trotterised Heisenberg-chain dynamics.
func Heisenberg(n, steps int) *Circuit { return workloads.Heisenberg(n, steps) }

// Benchmark builds a Table 2 benchmark by name, e.g. "QFT_24".
func Benchmark(name string) (*Circuit, error) { return workloads.Build(name) }

// ---- devices ----

// Topology is an immutable QCCD device description.
type Topology = device.Topology

// Trap is one linear trapping zone.
type Trap = device.Trap

// Segment is a shuttle path between two trap ends.
type Segment = device.Segment

// Placement is the mutable ion/slot assignment on a device.
type Placement = device.Placement

// LinearDevice builds an L-series device (n traps in a row).
func LinearDevice(n, capacity int) *Topology { return device.Linear(n, capacity) }

// GridDevice builds a G-series device (rows × cols traps, junction-routed).
func GridDevice(rows, cols, capacity int) *Topology { return device.Grid(rows, cols, capacity) }

// StarDevice builds an S-series fully-connected device.
func StarDevice(n, capacity int) *Topology { return device.Star(n, capacity) }

// TopologyByName builds one of the paper's named topologies ("L-6",
// "G-2x3", "S-4", ...).
func TopologyByName(name string, capacity int) (*Topology, error) {
	return device.ByName(name, capacity)
}

// NewTopology assembles a custom device from traps and segments.
func NewTopology(name string, traps []Trap, segments []Segment) (*Topology, error) {
	return device.New(name, traps, segments)
}

// PaperCapacity returns the per-trap capacity the paper pairs with each
// named topology.
func PaperCapacity(name string) int { return device.PaperCapacity(name) }

// ---- compilation ----

// CompileConfig tunes the S-SYNC scheduler.
type CompileConfig = core.Config

// CompileResult is the output of a compilation.
type CompileResult = core.Result

// Schedule is a hardware-compatible op stream.
type Schedule = schedule.Schedule

// Op is one scheduled operation.
type Op = schedule.Op

// Counts aggregates shuttle/SWAP/gate tallies.
type Counts = schedule.Counts

// MappingConfig tunes initial qubit mapping.
type MappingConfig = mapping.Config

// MappingStrategy selects the first-level mapping.
type MappingStrategy = mapping.Strategy

// Mapping strategies (Sec. 3.4).
const (
	EvenDividedMapping = mapping.EvenDivided
	GatheringMapping   = mapping.Gathering
	STAMapping         = mapping.STA
)

// DefaultCompileConfig returns the paper's benchmark configuration.
func DefaultCompileConfig() CompileConfig { return core.DefaultConfig() }

// Compile schedules a circuit onto a QCCD device with S-SYNC.
//
// Deprecated: use Do (or Engine.Do) with a CompileRequest, which adds
// content-addressed caching, single-flight coalescing and registry
// dispatch. Compile remains as a direct, uncached wrapper.
func Compile(cfg CompileConfig, c *Circuit, topo *Topology) (*CompileResult, error) {
	return core.Compile(cfg, c, topo)
}

// CompileMurali schedules with the Murali et al. (ISCA 2020) baseline.
//
// Deprecated: use Do with CompileRequest{Compiler: "murali"}.
func CompileMurali(c *Circuit, topo *Topology) (*CompileResult, error) {
	return engine.Direct(engine.Request{Circuit: c, Topo: topo, Compiler: engine.CompilerMurali})
}

// CompileDai schedules with the Dai et al. (IEEE TQE 2024) baseline.
//
// Deprecated: use Do with CompileRequest{Compiler: "dai"}.
func CompileDai(c *Circuit, topo *Topology) (*CompileResult, error) {
	return engine.Direct(engine.Request{Circuit: c, Topo: topo, Compiler: engine.CompilerDai})
}

// InitialMapping computes an initial placement without compiling.
func InitialMapping(cfg MappingConfig, c *Circuit, topo *Topology) (*Placement, error) {
	return mapping.Initial(cfg, c, topo)
}

// ---- simulation ----

// SimOptions configures simulated execution.
type SimOptions = sim.Options

// SimMetrics reports execution time and Eq. 4 success rate.
type SimMetrics = sim.Metrics

// NoiseParams bundles timing and heating constants (Sec. 4.1, Table 1).
type NoiseParams = noise.Params

// GateModel selects FM/PM/AM1/AM2 two-qubit gate implementations.
type GateModel = noise.GateModel

// Gate implementations (Fig. 13).
const (
	FMGate  = noise.FM
	PMGate  = noise.PM
	AM1Gate = noise.AM1
	AM2Gate = noise.AM2
)

// DefaultSimOptions uses the paper's simulation parameters.
func DefaultSimOptions() SimOptions { return sim.DefaultOptions() }

// DefaultNoiseParams returns the paper's evaluation constants.
func DefaultNoiseParams() NoiseParams { return noise.DefaultParams() }

// Simulate executes a compiled schedule on the device model.
func Simulate(s *Schedule, topo *Topology, opt SimOptions) SimMetrics {
	return sim.Run(s, topo, opt)
}

// VerifySchedule proves a compiled schedule is semantically equivalent to
// its source circuit under dense state-vector simulation (≤ 22 qubits).
func VerifySchedule(src *Circuit, s *Schedule, seed int64) error {
	return sim.VerifySchedule(src, s, seed)
}

// ---- experiments ----

// ExperimentOptions scales paper-experiment runs.
type ExperimentOptions = exp.Options

// RunExperiment regenerates a paper table or figure by name ("table1",
// "table2", "fig8" … "fig16", "ablation", or "all"), returning its textual
// report.
func RunExperiment(name string, opt ExperimentOptions) (string, error) {
	return exp.Run(name, opt)
}

// RunExperimentCSV regenerates an experiment's data rows as CSV.
func RunExperimentCSV(name string, opt ExperimentOptions) (string, error) {
	return exp.RunCSV(name, opt)
}

// ---- concurrent compilation engine ----

// Engine compiles requests concurrently with content-addressed result
// reuse and single-flight coalescing of identical in-flight requests.
type Engine = engine.Engine

// EngineOptions configures a new Engine (cache size, etc.).
type EngineOptions = engine.Options

// EngineStats snapshots engine and cache counters.
type EngineStats = engine.Stats

// CompileRequest is one compilation request: circuit, device, registered
// compiler name and optional configuration. It is the single input type
// of the compilation API, handled by Engine.Do (or the package-level Do).
type CompileRequest = engine.Request

// CompileResponse is one compilation outcome: the result plus its cache
// key, cache-hit and coalescing provenance.
type CompileResponse = engine.Response

// CompileKey is the content address of a CompileRequest: a sha256 over
// the request's canonical OpenQASM rendering, device layout and resolved
// execution plan. Two requests share a key exactly when a cached result
// for one answers the other.
type CompileKey = engine.Key

// RequestKey computes a request's stable content address (the "v4" key
// the engine caches and coalesces under, and the cluster router shards
// by). It fails only when the request itself is unresolvable — an
// unknown compiler name or a malformed pipeline. Priority, Deadline,
// Timeout and Label never enter the key: they select when and how a
// request runs, not what it computes.
func RequestKey(req CompileRequest) (CompileKey, error) { return engine.RequestKey(req) }

// CompilerFunc is one pluggable compiler, addressable by name once
// registered (RegisterCompiler).
type CompilerFunc = engine.CompilerFunc

// Registered compiler names (the registry is open: RegisterCompiler adds
// more; Compilers lists the current set).
const (
	MuraliCompilerName        = engine.CompilerMurali
	DaiCompilerName           = engine.CompilerDai
	SSyncCompilerName         = engine.CompilerSSync
	SSyncAnnealedCompilerName = engine.CompilerSSyncAnnealed
)

// RegisterCompiler adds a named compiler to the process-wide registry,
// making it addressable from CompileRequest.Compiler (and from ssyncd's
// /v2 endpoints). Names must be unique and non-empty.
func RegisterCompiler(name string, fn CompilerFunc) error {
	return engine.Register(name, fn)
}

// Compilers returns the registered compiler names, sorted.
func Compilers() []string { return engine.Compilers() }

// Do handles one CompileRequest on the process-wide DefaultEngine:
// registry dispatch, content-addressed result reuse, and single-flight
// coalescing of concurrent identical requests.
func Do(ctx context.Context, req CompileRequest) CompileResponse {
	return DefaultEngine().Do(ctx, req)
}

// ---- scheduling & backpressure ----

// Priority is a request's scheduling class. On a worker-bounded engine
// (EngineOptions.Workers > 0) the admission scheduler queues cache
// misses per class and hands freed worker slots out by class weight, so
// a flood of batch work cannot starve interactive requests; bounded
// class queues and deadline-aware admission shed overload with
// structured errors instead of letting it time out. Priority and
// CompileRequest.Deadline never enter the cache key: they select when a
// request runs, not what it computes.
type Priority = sched.Class

// The built-in priority classes, highest service share first.
// InteractivePriority is the default for a zero CompileRequest.Priority;
// CompilePool batches and portfolio races default their entrants to
// BatchPriority.
const (
	InteractivePriority = sched.Interactive
	BatchPriority       = sched.Batch
	BackgroundPriority  = sched.Background
)

// ParsePriority resolves a priority class name ("" means interactive),
// rejecting unknown names.
func ParsePriority(s string) (Priority, error) { return sched.ParseClass(s) }

// ErrQueueFull is the sentinel under queue-full load-shedding errors: a
// request's class queue was at its bound on arrival, so the request was
// rejected instead of queued (HTTP 429 from ssyncd).
var ErrQueueFull = sched.ErrQueueFull

// ErrDeadlineUnmeetable is the sentinel under deadline-admission
// errors: on arrival the queue-wait estimate already exceeded the
// request's deadline, so it was rejected immediately rather than queued
// as doomed work (HTTP 503 from ssyncd).
var ErrDeadlineUnmeetable = sched.ErrDeadline

// ShedRetryAfter extracts the retry hint carried by a load-shed error
// chain (ok=false for non-shed errors) — the same estimate ssyncd turns
// into Retry-After headers.
func ShedRetryAfter(err error) (time.Duration, bool) { return sched.RetryAfter(err) }

// SchedulerStats snapshots the admission scheduler: slot occupancy,
// total queue depth and per-class counters, taken under one lock.
// EngineStats.Sched carries it (nil on unbounded engines).
type SchedulerStats = sched.Stats

// SchedulerClassStats is one priority class's row in a SchedulerStats
// snapshot: depth, admitted/shed counts and queue-wait aggregates.
type SchedulerClassStats = sched.ClassStats

// ---- composable pass pipelines ----

// Pass is one pipeline stage: a named, deterministic transformation of
// the shared PassState. Register implementations with RegisterPass to
// make them addressable from CompileRequest.Pipeline (and from ssyncd's
// /v2 endpoints).
type Pass = pass.Pass

// PassState is the state a compilation threads through its pipeline:
// working circuit, device, resolved configurations, placement and
// result.
type PassState = pass.State

// PassSpec names a registered pass plus its opaque JSON options — one
// stage of CompileRequest.Pipeline.
type PassSpec = pass.Spec

// PassFactory builds a configured Pass from its options JSON.
type PassFactory = pass.Factory

// PassConfigUse declares which request-level defaults a pass reads from
// the PassState; custom passes may implement
// `ConfigUse() ssync.PassConfigUse` to keep irrelevant configuration out
// of their pipelines' cache keys (undeclared passes are assumed to read
// everything).
type PassConfigUse = pass.ConfigUse

// PassTiming records one executed pipeline stage: wall time and
// gate-count delta. CompileResult.PassTimings itemises a pipeline
// compilation with these.
type PassTiming = core.PassTiming

// Built-in pass names; the built-in compilers are canned pipelines over
// exactly these (BuiltinPipeline).
const (
	DecomposeBasisPass = pass.DecomposeBasis
	PlaceGreedyPass    = pass.PlaceGreedy
	PlaceAnnealedPass  = pass.PlaceAnnealed
	RouteSSyncPass     = pass.RouteSSync
	RouteMuraliPass    = pass.RouteMurali
	RouteDaiPass       = pass.RouteDai
	VerifyStatevecPass = pass.VerifyStatevec
)

// RegisterPass adds a named pass factory to the process-wide pass
// registry, making it addressable from CompileRequest.Pipeline (and from
// ssyncd's /v2 endpoints). Names must be unique and non-empty.
func RegisterPass(name string, factory PassFactory) error {
	return pass.Register(name, factory)
}

// Passes returns the registered pass names, sorted.
func Passes() []string { return pass.Names() }

// BuiltinPipeline returns the canned pass pipeline behind a built-in
// compiler name ("murali", "dai", "ssync", "ssync-annealed"), or
// ok=false for other names. A built-in name and its canned pipeline are
// the same compilation — identical results and cache keys — so the
// returned specs are the natural starting point for custom pipelines.
func BuiltinPipeline(name string) ([]PassSpec, bool) {
	return pass.BuiltinPipeline(name)
}

// CompileJob is one batch-compilation request.
//
// Deprecated: use CompileRequest.
type CompileJob = engine.Job

// CompileJobResult pairs a CompileJob with its outcome.
//
// Deprecated: use CompileResponse.
type CompileJobResult = engine.JobResult

// CompilePool fans batches of requests across a fixed worker set.
type CompilePool = engine.Pool

// PortfolioVariant is one entrant in a portfolio race.
type PortfolioVariant = engine.Variant

// PortfolioOutcome reports a finished portfolio race.
type PortfolioOutcome = engine.RaceOutcome

// CompilerID selects a compiler for engine jobs.
//
// Deprecated: compilers are addressed by registry name (a plain string)
// in CompileRequest.Compiler.
type CompilerID = engine.Compiler

// Engine compiler identifiers.
//
// Deprecated: use the *CompilerName string constants with CompileRequest.
const (
	MuraliCompiler = engine.Murali
	DaiCompiler    = engine.Dai
	SSyncCompiler  = engine.SSync
)

// NewEngine returns a concurrent compilation engine with a tiered
// content-addressed result cache (in-memory LRU, optionally over a
// persistent disk tier) and, when EngineOptions.StageCacheSize enables
// it, per-stage pipeline prefix reuse. It panics on disk-tier open
// errors (only possible with EngineOptions.CacheDir set); use OpenEngine
// to handle those.
func NewEngine(opt EngineOptions) *Engine { return engine.New(opt) }

// OpenEngine is NewEngine with disk-tier errors surfaced: an engine
// whose EngineOptions.CacheDir names an unusable directory fails here
// instead of panicking. Engines opened over the same directory across
// restarts serve previously compiled requests from the disk tier
// without re-running any pass.
func OpenEngine(opt EngineOptions) (*Engine, error) { return engine.Open(opt) }

// TieredCacheStats breaks one of the engine's caches (results, stage
// snapshots) down per tier: in-memory front and optional persistent
// disk tier, snapshotted consistently under one lock.
type TieredCacheStats = store.TieredStats

// MemoryTierStats snapshots an in-memory LRU cache tier.
type MemoryTierStats = store.LRUStats

// DiskTierStats snapshots the persistent on-disk cache tier.
type DiskTierStats = store.DiskStats

// PassSnapshot is a serialisable image of a pipeline State at a stage
// boundary — the unit of per-stage prefix caching. Embedders normally
// never touch snapshots directly; the engine captures and restores them
// when EngineOptions.StageCacheSize is set.
type PassSnapshot = pass.Snapshot

// defaultEngine backs the package-level batch/portfolio helpers so
// repeated calls share one result cache.
var (
	defaultEngineOnce sync.Once
	defaultEngine     *Engine
)

// DefaultEngine returns the lazily-created process-wide engine used by
// CompileBatch and CompilePortfolio.
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() { defaultEngine = engine.New(engine.Options{}) })
	return defaultEngine
}

// CompileBatch fans jobs across GOMAXPROCS workers of the process-wide
// engine, returning results index-aligned with the input. Repeated
// identical jobs are served from the shared result cache.
//
// Deprecated: build CompileRequests and run them through
// CompilePool.RunRequests (or call Do per request); this wrapper
// converts and stays for compatibility.
func CompileBatch(ctx context.Context, jobs []CompileJob) []CompileJobResult {
	pool := engine.Pool{Engine: DefaultEngine()}
	return pool.Run(ctx, jobs)
}

// CompileRequests fans requests across GOMAXPROCS workers of the
// process-wide engine, returning responses index-aligned with the input.
// Repeated identical requests are served from the shared result cache,
// and concurrent identical requests coalesce into one compilation.
func CompileRequests(ctx context.Context, reqs []CompileRequest) []CompileResponse {
	pool := engine.Pool{Engine: DefaultEngine()}
	return pool.RunRequests(ctx, reqs)
}

// CompilePortfolio races several strategies for one circuit concurrently
// on the process-wide engine and returns the outcome with the best
// schedule (highest success rate, then fewest shuttles). A nil variants
// slice races engine.DefaultPortfolio().
//
// Deprecated: call Engine.Race on an engine you control (DefaultEngine()
// works); this wrapper stays for compatibility.
func CompilePortfolio(ctx context.Context, c *Circuit, topo *Topology, variants []PortfolioVariant) (*PortfolioOutcome, error) {
	return DefaultEngine().Race(ctx, c, topo, variants, engine.RaceOptions{})
}

// DefaultPortfolio returns the standard portfolio entrants: S-SYNC under
// each first-level mapping strategy, the commutation-aware scheduler,
// and the annealed mapper under its deterministic default seed.
func DefaultPortfolio() []PortfolioVariant { return engine.DefaultPortfolio() }

// ---- analysis & extensions ----

// Timeline is the timed per-qubit expansion of a schedule.
type Timeline = schedule.Timeline

// TimelineStats summarises utilisation and parallelism.
type TimelineStats = schedule.TimelineStats

// BuildTimeline assigns start/end times to every op of a schedule.
func BuildTimeline(s *Schedule, p NoiseParams) *Timeline {
	return schedule.BuildTimeline(s, p)
}

// Optimize applies semantics-preserving peephole simplifications
// (inverse-pair cancellation, rotation merging, identity removal).
func Optimize(c *Circuit) *Circuit { return circuit.Optimize(c) }

// HardwareCircuit lowers a compiled schedule to a circuit over physical
// ions with explicit SWAP gates; ionOf maps each logical qubit to the ion
// holding its final state.
func HardwareCircuit(s *Schedule) (hw *Circuit, ionOf []int, err error) {
	return core.HardwareCircuit(s)
}

// TrapProgram partitions a schedule's gates by executing trap — the unit a
// per-zone laser controller consumes.
func TrapProgram(s *Schedule, numTraps int) ([][]Op, error) {
	return core.TrapProgram(s, numTraps)
}

// RacetrackDevice builds an R-series device: n traps on a closed ring.
func RacetrackDevice(n, capacity int) *Topology { return device.Racetrack(n, capacity) }

// AnnealConfig tunes the simulated-annealing first-level mapper.
type AnnealConfig = mapping.AnnealConfig

// DefaultAnnealConfig returns annealer settings that converge quickly on
// every Table 2 workload.
func DefaultAnnealConfig() AnnealConfig { return mapping.DefaultAnnealConfig() }

// AnnealedMapping computes an initial placement with the simulated-
// annealing trap assignment (an extension beyond the paper's three
// first-level strategies) plus the standard second-level arrangement.
func AnnealedMapping(cfg MappingConfig, ann AnnealConfig, c *Circuit, topo *Topology) (*Placement, error) {
	return mapping.InitialAnnealed(cfg, ann, c, topo)
}

// CompileWithPlacement runs the S-SYNC scheduler from a caller-supplied
// initial placement (e.g. one produced by AnnealedMapping). The circuit
// must already be in the native basis; the placement is consumed.
//
// Deprecated: for annealed placements use Do with
// CompileRequest{Compiler: "ssync-annealed"}, which is cacheable under
// its deterministic seed; register a CompilerFunc for other custom
// placement pipelines. This wrapper stays for compatibility.
func CompileWithPlacement(cfg CompileConfig, c *Circuit, topo *Topology, p *Placement) (*CompileResult, error) {
	return core.CompileWithPlacement(cfg, c, topo, p)
}

// ---- access control & quotas ----

// Principal is an authenticated caller identity: a stable name plus its
// per-principal quota limits. ssyncd resolves one from each request's
// API key (-auth-keys) and threads it through the request context, where
// the engine's admission path reads it for per-principal scheduling
// accountability and priority clamping.
type Principal = auth.Principal

// AuthLimits is one principal's quota envelope: sustained request rate
// and burst, a concurrent in-flight cap, and the strongest priority
// class it may claim. Zero fields mean unlimited.
type AuthLimits = auth.Limits

// AuthConfig configures an APIKeyAuthenticator: the hashed-keys file
// (hot-reloaded on change), whether credential-less callers are
// admitted as the shared anonymous principal, and the default limits
// applied to key lines that set none.
type AuthConfig = auth.Config

// APIKeyAuthenticator resolves API keys to Principals from a
// hot-reloaded file of SHA-256 key hashes (one
// "<sha256-hex> <name> [rate=N] [burst=N] [inflight=N]
// [max-priority=class]" line per key). Lookups compare in constant
// time; edits to the file take effect on the next request without a
// restart, and a bad edit keeps the previous generation serving.
type APIKeyAuthenticator = auth.Authenticator

// NewAPIKeyAuthenticator opens an authenticator over cfg, loading the
// keys file strictly: a malformed file fails construction rather than
// silently serving an empty key set.
func NewAPIKeyAuthenticator(cfg AuthConfig) (*APIKeyAuthenticator, error) {
	return auth.NewAuthenticator(cfg)
}

// QuotaEnforcer meters admitted work per principal and degrades
// gracefully instead of hard-failing: an over-budget principal's
// requests are first demoted down the priority ladder (interactive →
// batch → background), and only shed — with a retry hint — once the
// principal is over budget even at background. Within-budget
// principals are never affected by a neighbour's flood.
type QuotaEnforcer = auth.Enforcer

// NewQuotaEnforcer returns an empty quota enforcer.
func NewQuotaEnforcer() *QuotaEnforcer { return auth.NewEnforcer() }

// HashAPIKey returns the lowercase SHA-256 hex digest of a plaintext
// API key — the form keys files store, so plaintext keys never rest on
// disk.
func HashAPIKey(key string) string { return auth.HashKey(key) }

// AnonymousPrincipal is the shared principal name for credential-less
// callers admitted under AuthConfig.Optional.
const AnonymousPrincipal = auth.AnonymousName

// WithPrincipal returns ctx carrying the authenticated principal; the
// engine's admission path clamps request priority to the principal's
// cap and accounts scheduling per principal name.
func WithPrincipal(ctx context.Context, p *Principal) context.Context {
	return auth.WithPrincipal(ctx, p)
}

// PrincipalFrom returns the principal carried by ctx, or ok=false for
// an unauthenticated context.
func PrincipalFrom(ctx context.Context) (*Principal, bool) {
	return auth.PrincipalFrom(ctx)
}

// ErrUnauthenticated is the sentinel under authentication failures on a
// service that requires credentials (HTTP 401 from ssyncd).
var ErrUnauthenticated = auth.ErrUnauthenticated

// ErrUnknownAPIKey is the sentinel under lookups of well-formed keys
// absent from the key set — a wrong key is always rejected, never
// downgraded to anonymous (HTTP 401 from ssyncd).
var ErrUnknownAPIKey = auth.ErrUnknownKey

// ErrOverQuota is the sentinel under quota-shed errors: the principal
// was over budget even at background priority, so the request was
// rejected with a retry hint instead of admitted (HTTP 429 from
// ssyncd). QuotaRetryAfter extracts the hint.
var ErrOverQuota = auth.ErrOverQuota

// QuotaRetryAfter extracts the retry hint carried by a quota-shed error
// chain (ok=false for other errors) — the same estimate ssyncd turns
// into Retry-After headers on auth 429s.
func QuotaRetryAfter(err error) (time.Duration, bool) { return auth.RetryAfter(err) }

// ---- observability ----

// TraceSpan is one per-request trace event (queue wait, admission, a
// pass execution, a cache probe): a name plus its start offset and
// duration relative to the trace origin, with span/parent IDs placing
// it in the request's span tree.
type TraceSpan = obs.Span

// RequestTrace collects TraceSpans for one request under a shared
// 32-hex trace ID. Attach one to a context with WithTrace and the
// engine records span events into it; Engine responses surface the
// collected spans in Response.Trace.
type RequestTrace = obs.Trace

// TraceRecorder is the bounded in-memory flight recorder behind
// ssyncd's GET /v2/traces: completed traces are tail-sampled into
// error / slowest-N / per-route-sample retention classes.
type TraceRecorder = obs.Recorder

// TraceRecorderOptions sizes a TraceRecorder.
type TraceRecorderOptions = obs.RecorderOptions

// NewTraceRecorder builds a flight recorder; zero options take the
// defaults (512 traces, slowest 32, 1-in-16 per-route sampling).
func NewTraceRecorder(opt TraceRecorderOptions) *TraceRecorder { return obs.NewRecorder(opt) }

// NewTrace starts an empty trace originating now, under a fresh
// trace ID.
func NewTrace() *RequestTrace { return obs.NewTrace() }

// ContinueTrace starts a local trace segment that joins a caller's
// distributed trace (the trace and parent span IDs from a validated
// W3C traceparent header, e.g. via ParseTraceparent).
func ContinueTrace(traceID, parentSpanID string) *RequestTrace {
	return obs.ContinueTrace(traceID, parentSpanID)
}

// FormatTraceparent renders the version-00 W3C traceparent header for
// one outbound hop.
func FormatTraceparent(traceID, spanID string) string {
	return obs.FormatTraceparent(traceID, spanID)
}

// ParseTraceparent validates and splits an inbound W3C traceparent
// header; ok is false for anything but a well-formed version-00 value.
func ParseTraceparent(h string) (traceID, spanID string, ok bool) {
	return obs.ParseTraceparent(h)
}

// WithTrace returns ctx carrying tr; the engine records span events
// into the carried trace.
func WithTrace(ctx context.Context, tr *RequestTrace) context.Context {
	return obs.WithTrace(ctx, tr)
}

// TraceFrom returns the trace carried by ctx, or nil. A nil
// *RequestTrace is safe to record into (no-op).
func TraceFrom(ctx context.Context) *RequestTrace { return obs.TraceFrom(ctx) }

// NewRequestID mints a fresh 16-hex-character request correlation ID.
func NewRequestID() string { return obs.NewRequestID() }

// WithRequestID returns ctx carrying the request correlation ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return obs.WithRequestID(ctx, id)
}

// RequestIDFrom returns the request correlation ID carried by ctx, or
// "".
func RequestIDFrom(ctx context.Context) string { return obs.RequestID(ctx) }

// WithLogger returns ctx carrying a request-scoped structured logger;
// the engine and passes emit their debug lines through it, so
// attaching a logger pre-tagged with the request ID correlates every
// line to its request.
func WithLogger(ctx context.Context, log *slog.Logger) context.Context {
	return obs.WithLogger(ctx, log)
}

// LoggerFrom returns the logger carried by ctx, or slog.Default().
func LoggerFrom(ctx context.Context) *slog.Logger { return obs.Logger(ctx) }

// EngineHooks is the event-level instrumentation interface
// (EngineOptions.Hooks): pass executions, admission-queue waits and
// disk-tier blob operations. Embed obs.NopHooks for forward
// compatibility, or use NewServiceMetrics for the standard
// histogram-backed implementation.
type EngineHooks = obs.Hooks

// MetricsRegistry is a dependency-free Prometheus-text-format metric
// registry; it serves GET /metrics as an http.Handler.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewServiceMetrics registers the standard compilation-event histogram
// families (pass duration, queue wait, disk op latency) on reg and
// returns the EngineHooks feeding them.
func NewServiceMetrics(reg *MetricsRegistry) EngineHooks { return obs.NewServiceMetrics(reg) }
