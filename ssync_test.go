package ssync

import (
	"strings"
	"testing"
)

// Tests of the public API surface: everything a downstream user touches.

func TestPublicEndToEnd(t *testing.T) {
	c := QFT(10)
	topo, err := TopologyByName("G-2x2", 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(DefaultCompileConfig(), c, topo)
	if err != nil {
		t.Fatal(err)
	}
	m := Simulate(res.Schedule, topo, DefaultSimOptions())
	if m.SuccessRate <= 0 || m.SuccessRate >= 1 {
		t.Errorf("success rate = %g", m.SuccessRate)
	}
	if err := VerifySchedule(c, res.Schedule, 7); err != nil {
		t.Fatal(err)
	}
}

func TestPublicBuilders(t *testing.T) {
	c := NewCircuit(3)
	c.H(0).CX(0, 1)
	if err := c.Append(NewGate("rz", []int{2}, 0.5)); err != nil {
		t.Fatal(err)
	}
	if c.TwoQubitCount() != 1 {
		t.Errorf("2Q count = %d", c.TwoQubitCount())
	}
}

func TestPublicWorkloads(t *testing.T) {
	cases := map[string]*Circuit{
		"adder":      Adder(4),
		"bv":         BV(8),
		"qaoa":       QAOA(8, 2),
		"alt":        ALT(8, 2),
		"qft":        QFT(8),
		"heisenberg": Heisenberg(6, 2),
	}
	for name, c := range cases {
		if c.TwoQubitCount() == 0 {
			t.Errorf("%s: no 2Q gates", name)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := Benchmark("QFT_24"); err != nil {
		t.Error(err)
	}
}

func TestPublicDevices(t *testing.T) {
	if LinearDevice(3, 5).TotalCapacity() != 15 {
		t.Error("LinearDevice capacity wrong")
	}
	if GridDevice(2, 3, 4).NumTraps() != 6 {
		t.Error("GridDevice traps wrong")
	}
	if StarDevice(4, 4).NumTraps() != 4 {
		t.Error("StarDevice traps wrong")
	}
	traps := []Trap{{ID: 0, Capacity: 3}, {ID: 1, Capacity: 3}}
	segs := []Segment{{A: 0, B: 1, EndA: 1, EndB: 0}}
	custom, err := NewTopology("pair", traps, segs)
	if err != nil {
		t.Fatal(err)
	}
	if custom.Name != "pair" {
		t.Error("custom topology name lost")
	}
}

func TestPublicBaselines(t *testing.T) {
	c := QFT(8)
	topo := LinearDevice(2, 6)
	for name, compile := range map[string]func(*Circuit, *Topology) (*CompileResult, error){
		"murali": CompileMurali,
		"dai":    CompileDai,
	} {
		res, err := compile(c, topo)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Counts.TwoQubit != c.TwoQubitCount() {
			t.Errorf("%s executed %d/%d gates", name, res.Counts.TwoQubit, c.TwoQubitCount())
		}
	}
}

func TestPublicQASM(t *testing.T) {
	src := `OPENQASM 2.0; include "qelib1.inc"; qreg q[2]; h q[0]; cx q[0],q[1];`
	c, err := ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 2 {
		t.Fatalf("gates = %d", len(c.Gates))
	}
	if out := WriteQASM(c); !strings.Contains(out, "cx q[0],q[1];") {
		t.Errorf("WriteQASM output:\n%s", out)
	}
}

func TestPublicInitialMapping(t *testing.T) {
	c := QFT(8)
	topo := LinearDevice(2, 6)
	cfg := DefaultCompileConfig().Mapping
	cfg.Strategy = EvenDividedMapping
	p, err := InitialMapping(cfg, c, topo)
	if err != nil {
		t.Fatal(err)
	}
	if p.IonCount(0)+p.IonCount(1) != 8 {
		t.Error("mapping lost qubits")
	}
}

func TestPublicExperiments(t *testing.T) {
	out, err := RunExperiment("table2", ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "QFT_64") {
		t.Errorf("table2 output:\n%s", out)
	}
}

func TestPublicGateModels(t *testing.T) {
	c := QFT(8)
	topo := LinearDevice(2, 6)
	res, err := Compile(DefaultCompileConfig(), c, topo)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, model := range []GateModel{FMGate, PMGate, AM1Gate, AM2Gate} {
		opt := DefaultSimOptions()
		opt.Params.Model = model
		m := Simulate(res.Schedule, topo, opt)
		if m.SuccessRate <= 0 {
			t.Errorf("%v: success %g", model, m.SuccessRate)
		}
		if m.SuccessRate == prev {
			t.Logf("%v: identical to previous model (possible but unusual)", model)
		}
		prev = m.SuccessRate
	}
}

func TestPublicExtensions(t *testing.T) {
	c := QAOA(10, 2)
	topo := RacetrackDevice(3, 5)
	if topo.NumTraps() != 3 {
		t.Fatal("racetrack wrapper broken")
	}

	place, err := AnnealedMapping(DefaultCompileConfig().Mapping, DefaultAnnealConfig(), c, topo)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CompileWithPlacement(DefaultCompileConfig(), c.DecomposeToBasis(), topo, place)
	if err != nil {
		t.Fatal(err)
	}

	tl := BuildTimeline(res.Schedule, DefaultNoiseParams())
	if tl.Makespan <= 0 {
		t.Error("timeline makespan not positive")
	}
	st := tl.Stats()
	if st.MaxParallel < 1 || st.BusyTime <= 0 {
		t.Errorf("timeline stats: %+v", st)
	}
	if g := tl.Gantt(40); !strings.Contains(g, "#") {
		t.Error("gantt missing gate marks")
	}

	hw, ionOf, err := HardwareCircuit(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if hw.NumQubits != c.NumQubits || len(ionOf) != c.NumQubits {
		t.Error("hardware circuit shape wrong")
	}
	prog, err := TrapProgram(res.Schedule, topo.NumTraps())
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != topo.NumTraps() {
		t.Error("trap program shape wrong")
	}
}

func TestPublicOptimize(t *testing.T) {
	c := NewCircuit(2)
	c.H(0).H(0).CX(0, 1)
	o := Optimize(c)
	if len(o.Gates) != 1 {
		t.Errorf("Optimize left %d gates, want 1", len(o.Gates))
	}
}

func TestPublicCommutationAndHeatFlags(t *testing.T) {
	c := QFT(10)
	topo := GridDevice(2, 2, 4)
	for _, mut := range []func(*CompileConfig){
		func(cfg *CompileConfig) { cfg.CommutationAware = true },
		func(cfg *CompileConfig) { cfg.HeatAware = true },
	} {
		cfg := DefaultCompileConfig()
		mut(&cfg)
		res, err := Compile(cfg, c, topo)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifySchedule(c, res.Schedule, 3); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPublicCSVExperiment(t *testing.T) {
	out, err := RunExperimentCSV("table2", ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "application,") {
		t.Errorf("CSV header missing: %q", out[:40])
	}
}

func TestPublicT2(t *testing.T) {
	c := BV(8)
	topo := LinearDevice(2, 6)
	res, err := Compile(DefaultCompileConfig(), c, topo)
	if err != nil {
		t.Fatal(err)
	}
	base := Simulate(res.Schedule, topo, DefaultSimOptions())
	opt := DefaultSimOptions()
	opt.Params.T2 = 50
	dec := Simulate(res.Schedule, topo, opt)
	if dec.SuccessRate > base.SuccessRate {
		t.Errorf("T2 dephasing raised success: %g > %g", dec.SuccessRate, base.SuccessRate)
	}
}
